/**
 * @file
 * Streaming hyper-scale regime: a tenant *population* far beyond the
 * SID space churns through a bounded set of active slots, sharded
 * across independent Systems. Nothing is materialized — packets come
 * from ChurnStream's lazy per-tenant generators and detached tenants
 * are fully retired — so peak memory is O(active slots), not
 * O(population). The committed BENCH_hyperscale.json baseline pins
 * the deterministic scalars (packet/retirement counts, the merged
 * retirement-timeline checksum); scripts/check_repo.sh gate 8 diffs
 * a fresh --smoke run against it.
 *
 *   hyperscale_bench --tenants 120000 --active 1024 --shards 4 \
 *                    --jobs 4                 # the 100K+ regime
 *   hyperscale_bench --smoke --rss-budget-mb 512   # ctest smoke
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "core/multi_system.hh"
#include "util/str.hh"
#include "workload/streaming.hh"

using namespace hypersio;

namespace
{

struct Options
{
    uint64_t population = 20000; ///< virtual tenants over the run
    unsigned active = 512;       ///< concurrently attached slots
    unsigned shards = 4;
    unsigned jobs = 4;
    uint64_t seed = 42;
    workload::Benchmark bench = workload::Benchmark::Iperf3;
    double scale = 1.0;     ///< scales per-tenant packet budgets
    uint64_t rssBudgetMb = 0; ///< 0 = report only, no gate
    std::string jsonPath;
    bool smoke = false;
};

constexpr const char *UsageText =
    "options:\n"
    "  --tenants <n>        virtual-tenant population "
    "(default 20000)\n"
    "  --active <n>         concurrently attached SID slots, "
    "split across shards (default 512)\n"
    "  --shards <n>         independent system shards "
    "(default 4)\n"
    "  --jobs, -j <n>       worker threads (results identical "
    "for any value; default 4)\n"
    "  --seed <n>           workload seed (default 42)\n"
    "  --bench <name>       iperf3 | mediastream | websearch\n"
    "  --scale <f>          per-tenant packet-budget scale "
    "(default 1.0)\n"
    "  --smoke              quick deterministic run (10000 "
    "tenants, 256 slots, 2 shards)\n"
    "  --rss-budget-mb <n>  fail if peak RSS (VmHWM) exceeds "
    "this many MiB\n"
    "  --json <file>        write the hypersio-bench-1 report";

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    bool tenants_set = false, active_set = false;
    bool shards_set = false, jobs_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        auto next_u64 = [&](const char *flag) {
            uint64_t value = 0;
            if (!parseU64(next_value(flag), value) || value == 0)
                fatal("%s needs a positive integer", flag);
            return value;
        };
        // Slot/shard/job counts are `unsigned` throughout the run
        // machinery; narrowing silently (the old static_cast) turned
        // e.g. --active 4G into --active 0. Reject out-of-range
        // values with the offending number instead.
        auto next_unsigned = [&](const char *flag) {
            const uint64_t value = next_u64(flag);
            if (value > std::numeric_limits<unsigned>::max()) {
                fatal("%s value %" PRIu64 " does not fit in an "
                      "unsigned count (max %u)",
                      flag, value,
                      std::numeric_limits<unsigned>::max());
            }
            return static_cast<unsigned>(value);
        };
        if (arg == "--tenants") {
            opts.population = next_u64("--tenants");
            tenants_set = true;
        } else if (arg == "--active") {
            opts.active = next_unsigned("--active");
            active_set = true;
        } else if (arg == "--shards") {
            opts.shards = next_unsigned("--shards");
            shards_set = true;
        } else if (arg == "--jobs" || arg == "-j") {
            opts.jobs = next_unsigned(arg.c_str());
            jobs_set = true;
        } else if (arg == "--seed") {
            uint64_t value = 0;
            if (!parseU64(next_value("--seed"), value))
                fatal("--seed needs an integer");
            opts.seed = value;
        } else if (arg == "--bench") {
            opts.bench =
                workload::parseBenchmark(next_value("--bench"));
        } else if (arg == "--scale") {
            double value = 0.0;
            if (!parseDouble(next_value("--scale"), value) ||
                value <= 0.0)
                fatal("--scale needs a positive number");
            opts.scale = value;
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--rss-budget-mb") {
            opts.rssBudgetMb = next_u64("--rss-budget-mb");
        } else if (arg == "--json") {
            opts.jsonPath = next_value("--json");
        } else if (arg == "--help" || arg == "-h") {
            std::puts(UsageText);
            std::exit(0);
        } else {
            std::fputs(UsageText, stderr);
            std::fputc('\n', stderr);
            fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    if (opts.smoke) {
        if (!tenants_set)
            opts.population = 10000;
        if (!active_set)
            opts.active = 256;
        if (!shards_set)
            opts.shards = 2;
        if (!jobs_set)
            opts.jobs = 2;
    }
    if (opts.active < opts.shards)
        fatal("--active must be >= --shards (every shard needs a "
              "slot)");
    return opts;
}

/**
 * Peak resident set (VmHWM) in KiB from /proc/self/status. Returns
 * false when the file or the field is unavailable (non-Linux, masked
 * procfs) — never a silent 0, which would make an RSS budget gate
 * pass vacuously.
 */
bool
peakRssKib(uint64_t &out)
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return false;
    std::ostringstream text;
    text << status.rdbuf();
    return parseVmHwmKib(text.str(), out);
}

/** Shard `s`'s churn workload: its slice of the population. */
workload::ChurnConfig
shardChurn(const Options &opts, unsigned shard)
{
    workload::ChurnConfig cfg;
    cfg.bench = opts.bench;
    const uint64_t base = opts.population / opts.shards;
    const uint64_t extra = shard < (opts.population % opts.shards);
    cfg.population = static_cast<unsigned>(base + extra);
    cfg.slots = opts.active / opts.shards;
    cfg.seed = hashCombine(opts.seed, 0x5a4dULL + shard);
    // Smoke keeps budgets small so the ctest gate stays fast; the
    // long-tail heavy hitters stay in either mode.
    if (opts.smoke) {
        cfg.minBudget = 24;
        cfg.maxBudget = 64;
        cfg.tailMin = 256;
        cfg.tailMax = 512;
    }
    auto scaled = [&](uint64_t v) {
        const auto s = static_cast<uint64_t>(
            static_cast<double>(v) * opts.scale);
        return s ? s : uint64_t{1};
    };
    cfg.minBudget = scaled(cfg.minBudget);
    cfg.maxBudget = scaled(cfg.maxBudget);
    cfg.tailMin = scaled(cfg.tailMin);
    cfg.tailMax = scaled(cfg.tailMax);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    bench::WallTimer timer;

    // The JSON report rides the standard schema; config.scale and
    // config.max_tenants carry the budget scale and the population
    // so bench_compare.py refuses to diff mismatched regimes.
    core::BenchOptions report_opts;
    report_opts.scale = opts.scale;
    report_opts.maxTenants = static_cast<unsigned>(opts.population);
    report_opts.seed = opts.seed;
    report_opts.jobs = opts.jobs;
    report_opts.jsonPath = opts.jsonPath;
    bench::JsonReport report("hyperscale_bench", report_opts);

    std::printf("=== hyperscale_bench: streaming tenant churn ===\n");
    std::printf("(%" PRIu64 " virtual tenants over %u active slots, "
                "%u shards, %s, seed %" PRIu64 ")\n\n",
                opts.population, opts.active, opts.shards,
                workload::benchmarkName(opts.bench), opts.seed);

    core::SystemConfig config = core::SystemConfig::hypertrio();
    core::ShardedMultiSystem sharded(config, opts.shards, opts.jobs);

    uint64_t attaches = 0;
    std::vector<workload::ChurnStream *> churns(opts.shards);
    const core::ShardedRunResults results = sharded.run(
        [&](unsigned shard) {
            auto stream = std::make_unique<workload::ChurnStream>(
                shardChurn(opts, shard));
            churns[shard] = stream.get();
            return stream;
        });
    for (const workload::ChurnStream *churn : churns)
        attaches += churn->attaches();

    std::printf("%-26s %" PRIu64 "\n", "packets processed",
                results.packetsProcessed);
    std::printf("%-26s %" PRIu64 "\n", "packets dropped",
                results.packetsDropped);
    std::printf("%-26s %" PRIu64 "\n", "translations",
                results.translations);
    std::printf("%-26s %" PRIu64 "\n", "tenants attached", attaches);
    std::printf("%-26s %" PRIu64 "\n", "tenants retired",
                results.tenantsRetired);
    std::printf("%-26s %" PRIu64 "\n", "max shard elapsed (ticks)",
                results.maxElapsed);
    std::printf("%-26s %#014" PRIx64 "\n", "retire-merge checksum",
                results.mergeChecksum);

    // Every virtual tenant must have been attached and retired, and
    // every shard must end with zero live page tables — the bench
    // asserts the O(active) invariant it exists to measure.
    HYPERSIO_ASSERT(attaches == opts.population,
                    "attached %" PRIu64 " of %" PRIu64 " tenants",
                    attaches, opts.population);
    HYPERSIO_ASSERT(results.tenantsRetired == opts.population,
                    "retired %" PRIu64 " of %" PRIu64 " tenants",
                    results.tenantsRetired, opts.population);
    for (unsigned s = 0; s < opts.shards; ++s) {
        HYPERSIO_ASSERT(sharded.shard(s).tables().size() == 0,
                        "shard %u ended with %zu live page tables",
                        s, sharded.shard(s).tables().size());
    }

    uint64_t rss_kib = 0;
    const bool rss_known = peakRssKib(rss_kib);
    if (rss_known) {
        std::printf("%-26s %.1f MiB%s\n", "peak RSS (VmHWM)",
                    static_cast<double>(rss_kib) / 1024.0,
                    opts.rssBudgetMb
                        ? (" (budget " +
                           std::to_string(opts.rssBudgetMb) +
                           " MiB)").c_str()
                        : "");
    } else {
        std::printf("%-26s %s\n", "peak RSS (VmHWM)",
                    "unavailable");
    }
    if (opts.rssBudgetMb && !rss_known) {
        // A budget the harness cannot measure must not pass quietly:
        // the old code read a missing VmHWM as 0 KiB, turning the
        // O(active) memory gate into a no-op.
        fatal("--rss-budget-mb %" PRIu64 " requested but VmHWM is "
              "unavailable in /proc/self/status — cannot verify the "
              "RSS budget",
              opts.rssBudgetMb);
    }
    if (opts.rssBudgetMb && rss_kib > opts.rssBudgetMb * 1024) {
        fatal("peak RSS %.1f MiB exceeds the %" PRIu64
              " MiB budget — O(active) state is broken",
              static_cast<double>(rss_kib) / 1024.0,
              opts.rssBudgetMb);
    }

    if (report.enabled()) {
        for (unsigned s = 0; s < opts.shards; ++s) {
            report.addPoint(
                "shard" + std::to_string(s),
                workload::benchmarkName(opts.bench),
                static_cast<unsigned>(churns[s]->numTenants()),
                "CHURN", results.perShard[s]);
        }
        // Deterministic scalars only (no RSS, no wall clock): the
        // check_repo gate diffs them at zero drift. The checksum is
        // 48-bit so a JSON double round-trip is exact.
        report.addScalar("packets_processed",
                         static_cast<double>(
                             results.packetsProcessed));
        report.addScalar("packets_dropped",
                         static_cast<double>(results.packetsDropped));
        report.addScalar("translations",
                         static_cast<double>(results.translations));
        report.addScalar("tenants_attached",
                         static_cast<double>(attaches));
        report.addScalar("tenants_retired",
                         static_cast<double>(results.tenantsRetired));
        report.addScalar("retire_merge_checksum",
                         static_cast<double>(results.mergeChecksum));
        report.write(timer.seconds());
    }

    std::fprintf(stderr, "[wall] %.2f s (--jobs %u)\n",
                 timer.seconds(), opts.jobs);
    return 0;
}
