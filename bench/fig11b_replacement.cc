/**
 * @file
 * Fig. 11b: DevTLB replacement-policy study on the Base design —
 * LRU versus LFU (motivated by the three-frequency-group structure
 * of tenant accesses) versus a Belady oracle built from the full
 * trace. LFU beats LRU around the thrashing knee; even the oracle
 * cannot make a shared DevTLB scale to hyper-tenant counts.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 11b",
                  "DevTLB replacement policies (Base, 64e/8w)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(
        std::min(opts.maxTenants, 256u));

    constexpr cache::ReplPolicyKind kPolicies[] = {
        cache::ReplPolicyKind::LRU, cache::ReplPolicyKind::LFU,
        cache::ReplPolicyKind::Oracle};

    const bench::WallTimer timer;
    bench::JsonReport report("fig11b_replacement", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (auto policy : kPolicies) {
            for (unsigned t : tenants) {
                core::SystemConfig config =
                    core::SystemConfig::base();
                config.device.devtlb.policy = policy;
                batch.add(std::move(config), bench, t);
            }
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (auto policy : kPolicies) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(cache::replPolicyName(policy),
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    std::printf("\npaper: LFU outperforms LRU near the knee (up to "
                "2x for iperf3 at 16 tenants); oracle is slightly "
                "better still, but no policy makes the shared "
                "DevTLB scale in the hyper-tenant regime\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
