/**
 * @file
 * Shared helpers for the per-figure bench binaries: each binary
 * regenerates one table or figure of the paper, printing the same
 * rows/series the paper reports.
 *
 * Sweep-style benches collect their points into a PointBatch and run
 * them through the ExperimentRunner worker pool (`--jobs`), which
 * keeps the printed tables byte-identical to a serial run while
 * using every core.
 */

#ifndef HYPERSIO_BENCH_COMMON_HH
#define HYPERSIO_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "hypersio/hypersio.hh"
#include "json_report.hh"

namespace hypersio::bench
{

/**
 * Builds the standard runner for a bench binary. With `--json` the
 * runner also captures each point's full stat tree so the report
 * can embed it.
 */
inline core::ExperimentRunner
makeRunner(const core::BenchOptions &opts)
{
    return core::ExperimentRunner(opts.scale, opts.seed, opts.jobs,
                                  !opts.jsonPath.empty());
}

/** Runs one (config, workload) point and returns the results. */
inline core::RunResults
runPoint(core::ExperimentRunner &runner, core::SystemConfig config,
         workload::Benchmark bench, unsigned tenants,
         const std::string &il = "RR1", bool bypass = false)
{
    core::ExperimentPoint point;
    point.label = config.name;
    point.config = std::move(config);
    point.bench = bench;
    point.tenants = tenants;
    point.interleave = trace::parseInterleaving(il);
    point.bypassTranslation = bypass;
    return runner.run(point).results;
}

/**
 * Collects experiment points across a bench's loop structure, runs
 * them all at once through ExperimentRunner::runAll (fanning out
 * over the `--jobs` worker pool), and hands the results back in the
 * order the points were added.
 *
 * Usage: run the bench's loops once calling add(), call run(), then
 * mirror the same loops calling take() — take() returns results in
 * exactly add() order, so the printed tables match a serial run
 * byte for byte.
 */
class PointBatch
{
  public:
    /**
     * @param report when non-null, every take() also records its
     *        point into the `--json` report (a no-op report — no
     *        `--json` on the command line — records nothing)
     */
    explicit PointBatch(core::ExperimentRunner &runner,
                        JsonReport *report = nullptr)
        : _runner(runner), _report(report)
    {}

    /** Queues one point; its result comes back in add() order. */
    void
    add(core::SystemConfig config, workload::Benchmark bench,
        unsigned tenants, const std::string &il = "RR1",
        bool bypass = false)
    {
        core::ExperimentPoint point;
        point.label = config.name;
        point.config = std::move(config);
        point.bench = bench;
        point.tenants = tenants;
        point.interleave = trace::parseInterleaving(il);
        point.bypassTranslation = bypass;
        _points.push_back(std::move(point));
    }

    /** Runs every queued point across the runner's worker pool. */
    void
    run(std::ostream *progress = nullptr)
    {
        _rows = _runner.runAll(_points, progress);
        _next = 0;
    }

    /** Next result, in add() order. */
    const core::RunResults &
    take()
    {
        if (_next >= _rows.size())
            panic("PointBatch::take() past the %zu queued points",
                  _rows.size());
        if (_report)
            _report->addRow(_points[_next], _rows[_next]);
        return _rows[_next++].results;
    }

    size_t size() const { return _points.size(); }

  private:
    core::ExperimentRunner &_runner;
    JsonReport *_report;
    std::vector<core::ExperimentPoint> _points;
    std::vector<core::ExperimentRow> _rows;
    size_t _next = 0;
};

/** Wall-clock timer for the end-of-bench speedup line. */
class WallTimer
{
  public:
    WallTimer() : _start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _start;
};

/**
 * Prints the wall-clock line. It goes to stderr so stdout result
 * tables stay byte-identical across `--jobs` values; run a bench
 * with `--jobs 1` and again with `--jobs N` to read the sweep
 * speedup directly off the two lines.
 */
inline void
wallClockLine(const WallTimer &timer, const core::BenchOptions &opts)
{
    std::fprintf(stderr, "[wall] %.2f s (--jobs %u)\n",
                 timer.seconds(), opts.jobs);
}

/** Table IV "HyperTRIO without prefetching" configuration. */
inline core::SystemConfig
partitionedPtbConfig(unsigned ptb_entries)
{
    core::SystemConfig config = core::SystemConfig::hypertrio();
    config.name = "part+ptb" + std::to_string(ptb_entries);
    config.device.ptbEntries = ptb_entries;
    config.device.prefetch.enabled = false;
    return config;
}

/** Prints the standard bench banner. */
inline void
banner(const char *id, const char *what,
       const core::BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", id, what);
    std::printf("(scale %.3g, max %u tenants, seed %llu; "
                "use --full for paper-sized traces)\n\n",
                opts.scale, opts.maxTenants,
                (unsigned long long)opts.seed);
}

/** The progress sink for a batch run: stderr when --verbose. */
inline std::ostream *
progressSink(const core::BenchOptions &opts)
{
    return opts.verbose ? &std::cerr : nullptr;
}

// ---------------------------------------------------------------
// A-vs-B microbench helpers (event_kernel_microbench,
// translation_path_microbench, event_fusion_microbench). The
// timing, rate-conversion, and `--check-speedup` fragments used to
// be copy-pasted per binary; they live here so the gate wording and
// the zero-wall / zero-rate edge cases stay identical everywhere.
// ---------------------------------------------------------------

/** Wall seconds elapsed since `t0` (steady clock). */
inline double
wallSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** count/wall per second; 0 when the wall time is degenerate. */
inline double
perSecond(uint64_t count, double wall)
{
    return wall <= 0.0 ? 0.0 : static_cast<double>(count) / wall;
}

/** Million events per second (the event-kernel bench's unit). */
inline double
meps(uint64_t events, double wall)
{
    return perSecond(events, wall) / 1e6;
}

/** A/B ratio fast/slow; 0 when either side is degenerate. */
inline double
speedupRatio(double fast_rate, double slow_rate)
{
    return fast_rate > 0.0 && slow_rate > 0.0
               ? fast_rate / slow_rate
               : 0.0;
}

/**
 * The `--check-speedup X` gate: true when `measured` meets the
 * `required` floor (or no floor was requested, `required <= 0`).
 * On failure prints the FAIL line the repo gates grep for; the
 * caller exits nonzero.
 */
inline bool
checkSpeedup(const char *what, double measured, double required)
{
    if (required <= 0.0 || measured >= required)
        return true;
    std::fprintf(stderr,
                 "FAIL: %s speedup %.2fx below the required %.2fx\n",
                 what, measured, required);
    return false;
}

} // namespace hypersio::bench

#endif // HYPERSIO_BENCH_COMMON_HH
