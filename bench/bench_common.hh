/**
 * @file
 * Shared helpers for the per-figure bench binaries: each binary
 * regenerates one table or figure of the paper, printing the same
 * rows/series the paper reports.
 */

#ifndef HYPERSIO_BENCH_COMMON_HH
#define HYPERSIO_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "hypersio/hypersio.hh"

namespace hypersio::bench
{

/** Runs one (config, workload) point and returns the results. */
inline core::RunResults
runPoint(core::ExperimentRunner &runner, core::SystemConfig config,
         workload::Benchmark bench, unsigned tenants,
         const std::string &il = "RR1", bool bypass = false)
{
    core::ExperimentPoint point;
    point.label = config.name;
    point.config = std::move(config);
    point.bench = bench;
    point.tenants = tenants;
    point.interleave = trace::parseInterleaving(il);
    point.bypassTranslation = bypass;
    return runner.run(point).results;
}

/** Table IV "HyperTRIO without prefetching" configuration. */
inline core::SystemConfig
partitionedPtbConfig(unsigned ptb_entries)
{
    core::SystemConfig config = core::SystemConfig::hypertrio();
    config.name = "part+ptb" + std::to_string(ptb_entries);
    config.device.ptbEntries = ptb_entries;
    config.device.prefetch.enabled = false;
    return config;
}

/** Prints the standard bench banner. */
inline void
banner(const char *id, const char *what,
       const core::BenchOptions &opts)
{
    std::printf("=== %s: %s ===\n", id, what);
    std::printf("(scale %.3g, max %u tenants, seed %llu; "
                "use --full for paper-sized traces)\n\n",
                opts.scale, opts.maxTenants,
                (unsigned long long)opts.seed);
}

} // namespace hypersio::bench

#endif // HYPERSIO_BENCH_COMMON_HH
