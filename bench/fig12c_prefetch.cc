/**
 * @file
 * Fig. 12c: contribution of the Translation Prefetching Scheme on
 * top of the partitioned + PTB-32 design, plus the prefetcher
 * sensitivity sweep the paper describes (Prefetch Buffer size and
 * history length). Our model's prefetch path is shorter than the
 * authors' testbed, so the calibrated optimum differs from the
 * paper's (8-entry PB, 48-access stride) — the sweep makes the
 * trade-off visible.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 12c",
                  "translation prefetching gain over partitioned "
                  "design with PTB=32",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    // Sensitivity sweep dimensions (PB size x history length).
    const unsigned sens_tenants = std::min(opts.maxTenants, 256u);
    constexpr unsigned kPbSweep[] = {8, 16, 32};
    constexpr unsigned kHistorySweep[] = {12, 20, 32, 48};

    const bench::WallTimer timer;
    bench::JsonReport report("fig12c_prefetch", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (unsigned t : tenants) {
            batch.add(bench::partitionedPtbConfig(32), bench, t);
            batch.add(core::SystemConfig::hypertrio(), bench, t);
        }
    }
    for (unsigned pb : kPbSweep) {
        for (unsigned h : kHistorySweep) {
            core::SystemConfig config =
                core::SystemConfig::hypertrio();
            config.device.prefetch.bufferEntries = pb;
            config.device.prefetch.historyLength = h;
            batch.add(std::move(config), workload::Benchmark::Iperf3,
                      sens_tenants);
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<double> without;
        std::vector<double> with_pf;
        std::vector<double> pb_rate;
        for (unsigned t : tenants) {
            (void)t;
            without.push_back(batch.take().achievedGbps);
            const auto &r = batch.take();
            with_pf.push_back(r.achievedGbps);
            pb_rate.push_back(r.pbHitRate * 100.0);
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants,
            {{"no-prefetch", without},
             {"prefetch", with_pf},
             {"PB-hit(%)", pb_rate}});
    }

    std::printf("\n--- prefetcher sensitivity at %u tenants "
                "(iperf3 RR1) ---\n",
                sens_tenants);
    std::printf("%8s %8s %12s %10s\n", "PB", "history",
                "Gb/s", "PB-hit(%)");
    for (unsigned pb : kPbSweep) {
        for (unsigned h : kHistorySweep) {
            const auto &r = batch.take();
            std::printf("%8u %8u %12.1f %10.1f\n", pb, h,
                        r.achievedGbps, r.pbHitRate * 100.0);
        }
    }

    std::printf("\npaper: prefetching improves hyper-tenant link "
                "utilisation by up to 30%% (websearch) and serves "
                "~45%% of requests from the Prefetch Buffer at "
                "1024 tenants; it scales better than growing the "
                "PTB because buffer and history length stay fixed\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
