/**
 * @file
 * Fig. 11c: fully-associative DevTLB with oracle replacement. Each
 * benchmark has an "active translation set" — the minimum number of
 * fully-associative entries needed per tenant for full utilisation —
 * and once the tenant count approaches the available entries, every
 * new request misses no matter how ideal the replacement is.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 11c",
                  "fully-associative DevTLB with oracle "
                  "replacement",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(
        std::min(opts.maxTenants, 128u));

    // Per-benchmark active translation sets (measured, cf. Fig. 8).
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        const auto profile = workload::benchmarkProfile(bench);
        workload::TenantLogGenerator gen(profile.pattern, opts.seed);
        const unsigned active = workload::activeTranslationSet(
            gen.generate(0, 50000), 0.999, 128);
        std::printf("measured active translation set, %-12s: %u\n",
                    workload::benchmarkName(bench), active);
    }

    const bench::WallTimer timer;
    bench::JsonReport report("fig11c_fullassoc", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (size_t entries : {8u, 32u, 36u, 64u}) {
            for (unsigned t : tenants) {
                core::SystemConfig config =
                    core::SystemConfig::base();
                config.device.devtlb = {
                    entries, entries, 1,
                    cache::ReplPolicyKind::Oracle, 7};
                batch.add(std::move(config), bench, t);
            }
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (size_t entries : {8u, 32u, 36u, 64u}) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(std::to_string(entries) + "e-FA",
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    std::printf("\npaper: once more than ~8 tenants share the "
                "device, even an ideally replaced fully-associative "
                "DevTLB produces low utilisation — the tenant count "
                "reaches the entry count and every request misses\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
