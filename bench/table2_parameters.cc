/**
 * @file
 * Table II: system parameters used by the performance simulator.
 * Prints the model's active latency/geometry constants next to the
 * paper's values.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    const bench::WallTimer timer;
    bench::JsonReport report("table2_parameters", opts);
    const auto config = core::SystemConfig::base();
    std::printf("=== Table II: performance-model parameters ===\n");
    std::printf("%-40s %12s %12s\n", "parameter", "paper", "model");
    std::printf("%-40s %12s %12.0f\n", "one-way PCIe latency (ns)",
                "450", ticksToNs(config.pcieOneWay));
    std::printf("%-40s %12s %12.0f\n", "DRAM latency (ns)", "50",
                ticksToNs(config.memory.accessLatency));
    std::printf("%-40s %12s %12.0f\n", "IOTLB hit (ns)", "2",
                ticksToNs(config.iommu.iotlbHitLatency));
    std::printf("%-40s %12s %12u\n",
                "memory accesses per 4KB 2-D walk", "24",
                mem::fullWalkAccesses(mem::PageSize::Size4K));
    std::printf("%-40s %12s %12u\n", "packet size at I/O link (B)",
                "1542", config.link.packetBytes);
    std::printf("%-40s %12s %12.0f\n", "I/O link bandwidth (Gb/s)",
                "200", config.link.gbps);
    std::printf("%-40s %12s %9zu/%zu\n", "L2 page cache", "512/16w",
                config.iommu.l2tlb.entries, config.iommu.l2tlb.ways);
    std::printf("%-40s %12s %9zu/%zu\n", "L3 page cache", "1024/16w",
                config.iommu.l3tlb.entries, config.iommu.l3tlb.ways);
    std::printf("\nfull active configuration:\n%s",
                config.describe().c_str());
    report.addScalar("pcie_one_way_ns",
                     ticksToNs(config.pcieOneWay));
    report.addScalar("dram_latency_ns",
                     ticksToNs(config.memory.accessLatency));
    report.addScalar("iotlb_hit_ns",
                     ticksToNs(config.iommu.iotlbHitLatency));
    report.addScalar(
        "walk_accesses_4k",
        mem::fullWalkAccesses(mem::PageSize::Size4K));
    report.addScalar("packet_bytes", config.link.packetBytes);
    report.addScalar("link_gbps", config.link.gbps);
    report.write(timer.seconds());
    return 0;
}
