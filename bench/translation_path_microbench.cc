/**
 * @file
 * Translation-path microbenchmark: replays deterministic adversarial
 * hyper-traces through the full Device→Chipset→IOMMU system and
 * reports end-to-end packets/sec plus per-structure probe counts.
 *
 * This is the measurement harness for the flat-hash/SoA data-layout
 * work: the same binary built with -DHYPERSIO_LEGACY_STRUCTURES=ON
 * pins the pre-flat layouts (std::unordered_map-backed FlatMap,
 * array-of-structures SetAssocCache), and scripts/check_repo.sh
 * requires the flat build to reach >= 1.3x the legacy build's
 * functional-replay packets/sec (both compiled with
 * -DHYPERSIO_CHECKED=OFF, since the shadow oracle's own mirrors
 * would otherwise dominate the probes being measured). Each pattern
 * runs twice: a timed full-system replay, whose cycles are mostly
 * event-kernel and callback plumbing shared by both layouts and
 * whose probe counts anchor the cross-build differential check, and
 * a functional replay (see FunctionalPath below) that drives only
 * the translation structures and therefore isolates the layout
 * cost — that second rate is the gated one.
 *
 * Three adversarial patterns run through the HyperTRIO configuration
 * (PTB 32, partitioned DevTLB, prefetching on, so the SID predictor,
 * history reader, and Prefetch Buffer are all live):
 *
 *   uniform_random  random SIDs/pages/sizes — big page-table
 *                   directories, mixed 4K/2M translate probes
 *   pb_thrash       large per-tenant working set — miss-heavy, walk-
 *                   and MSHR-bound
 *   huge_mix        per-packet 2M/4K mix — stresses the page-size
 *                   discriminator fast path
 *
 * Every run must process the whole trace; the harness asserts the
 * packet accounting so a broken build cannot "win" by dropping work.
 * The probe-count scalars are machine-independent and bit-identical
 * across layout modes — scripts/bench_speedup.py cross-checks them
 * when computing the speedup, so the gate doubles as a differential
 * test between the flat and legacy structures.
 *
 * Usage:
 *   translation_path_microbench [--packets N] [--tenants N]
 *       [--reps N] [--smoke] [--json FILE]
 *
 * The JSON report (schema hypersio-bench-1) carries the exact probe
 * counts plus the measured rates (machine-dependent;
 * scripts/check_repo.sh compares them against the committed
 * BENCH_translation_path.json with a loose tolerance).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cache/set_assoc_cache.hh"
#include "core/prefetch.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "iommu/iommu.hh"
#include "iommu/keys.hh"
#include "json_report.hh"
#include "util/flat_map.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "workload/adversarial.hh"

namespace
{

using namespace hypersio;

struct Options
{
    uint64_t packets = 24000;
    unsigned tenants = 2048;
    unsigned reps = 3;
    std::string jsonPath;
    bool smoke = false;
    bool functionalOnly = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s [--packets N] [--tenants N] [--reps N] [--smoke]\n"
        "          [--json FILE]\n"
        "  --packets N  packets per pattern (default 24000)\n"
        "  --tenants N  hyper-tenant count (default 2048)\n"
        "  --reps N     timed replays per pattern (default 3)\n"
        "  --smoke      small run for CI smoke (1200 packets,\n"
        "               32 tenants, 1 rep)\n"
        "  --functional-only\n"
        "               skip the timed full-system replays; run\n"
        "               only the structure-level functional replay\n"
        "               (profiling aid, see scripts/profile.sh)\n"
        "  --json FILE  write a hypersio-bench-1 report\n",
        argv0);
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            return argv[++i];
        };
        if (arg == "--packets") {
            opts.packets = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--tenants") {
            opts.tenants = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (arg == "--reps") {
            opts.reps = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--functional-only") {
            opts.functionalOnly = true;
        } else if (arg == "--json") {
            opts.jsonPath = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (opts.smoke) {
        opts.packets = 1200;
        opts.tenants = 32;
        opts.reps = 1;
    }
    if (opts.packets == 0 || opts.tenants == 0 || opts.reps == 0)
        usage(argv[0], 2);
    return opts;
}

using bench::wallSeconds;

/** The probe counters one pattern run produces (deterministic). */
struct ProbeCounts
{
    uint64_t translations = 0;
    uint64_t devtlb = 0;
    uint64_t pb = 0;
    uint64_t context = 0;
    uint64_t iotlb = 0;
    uint64_t l2 = 0;
    uint64_t l3 = 0;
    uint64_t walks = 0;
    uint64_t iommuRequests = 0;
};

/**
 * Functional replay: the translation path's structure traffic with
 * the discrete-event engine stripped away.
 *
 * The timed full-system runs above spend most of their cycles in the
 * event kernel and callback plumbing, which are byte-for-byte
 * identical in both layout modes — they dilute the measurement of
 * the thing the layouts change. This replay drives the *real*
 * structures (SetAssocCache DevTLB/IOTLB/L2/L3, PrefetchUnit with
 * its SID predictor, PageTableDirectory and its PageTables, a
 * per-tenant FlatMap history) through the same deterministic packet
 * stream, synchronously: per packet, apply the page map/unmap ops,
 * train the predictor, run one predictor-driven prefetch fill, and
 * translate ring + data + notify through the DevTLB → PB → IOTLB →
 * L2/L3 → page-walk hierarchy with the standard fill-on-miss flow.
 *
 * Every probe lands on a structure this PR's layouts back, so its
 * packets/sec isolates the data-layout cost; it is the scalar
 * scripts/check_repo.sh gates at >= 1.3x flat over legacy. All
 * counts it produces are deterministic and layout-independent
 * (nothing here iterates a map), which bench_speedup.py exploits as
 * a cross-build differential check.
 */
class FunctionalPath
{
  public:
    explicit FunctionalPath(const core::SystemConfig &cfg)
        : _devtlb(cfg.device.devtlb),
          _devtlbPartitions(
              static_cast<uint32_t>(cfg.device.devtlb.partitions)),
          _iotlb(cfg.iommu.iotlb), _l2(cfg.iommu.l2tlb),
          _l3(cfg.iommu.l3tlb), _prefetch(cfg.device.prefetch),
          _tables(cfg.seed)
    {}

    void
    replay(const trace::HyperTrace &trace)
    {
        for (const auto &pkt : trace.packets) {
            const mem::DomainId did = pkt.sid;
            applyOps(trace, pkt);
            _prefetch.observePacket(pkt.sid);
            prefetchFor(pkt.sid);
            translate(did, pkt.sid, pkt.ringIova,
                      mem::PageSize::Size4K);
            translate(did, pkt.sid, pkt.dataIova,
                      pkt.dataHuge ? mem::PageSize::Size2M
                                   : mem::PageSize::Size4K);
            translate(did, pkt.sid, pkt.notifyIova,
                      mem::PageSize::Size4K);
        }
    }

    uint64_t translations() const { return _translations; }
    uint64_t walks() const { return _walks; }
    uint64_t devtlbLookups() const { return _devtlb.stats().lookups; }
    uint64_t iotlbLookups() const { return _iotlb.stats().lookups; }
    uint64_t l2Lookups() const { return _l2.stats().lookups; }
    uint64_t l3Lookups() const { return _l3.stats().lookups; }
    uint64_t pbLookups() const { return _prefetch.bufferStats().lookups; }

  private:
    void
    applyOps(const trace::HyperTrace &trace,
             const trace::PacketRecord &pkt)
    {
        for (uint16_t i = 0; i < pkt.opCount; ++i) {
            const trace::PageOp &op = trace.ops[pkt.opBegin + i];
            mem::PageTable &table = _tables.get(pkt.sid);
            if (op.isMap) {
                table.map(op.pageBase, op.size);
            } else {
                table.unmap(op.pageBase);
                const uint64_t key = iommu::translationKey(
                    pkt.sid, op.pageBase, op.size);
                const uint64_t index =
                    iommu::translationIndex(op.pageBase, op.size);
                _devtlb.invalidate(key, index,
                                   partitionOf(pkt.sid));
                _iotlb.invalidate(key, index);
                _prefetch.invalidate(pkt.sid, op.pageBase, op.size);
            }
        }
    }

    uint32_t
    partitionOf(trace::SourceId sid) const
    {
        return static_cast<uint32_t>(sid) % _devtlbPartitions;
    }

    /** One predictor-driven Prefetch Buffer fill, as the device's
     * prefetcher would issue it for the predicted next tenant. */
    void
    prefetchFor(trace::SourceId sid)
    {
        const auto predicted = _prefetch.predict(sid);
        if (!predicted)
            return;
        const uint64_t *last = _lastIova.find(*predicted);
        if (!last)
            return;
        const mem::Iova iova = *last & ~uint64_t{1};
        const mem::PageSize size = (*last & 1)
                                       ? mem::PageSize::Size2M
                                       : mem::PageSize::Size4K;
        const mem::Translation tr =
            _tables.get(*predicted).translate(iova);
        if (tr.valid)
            _prefetch.fill(*predicted, iova, size, tr.hostAddr);
    }

    void
    translate(mem::DomainId did, trace::SourceId sid, mem::Iova iova,
              mem::PageSize size)
    {
        ++_translations;
        _lastIova[did] =
            iova | (size == mem::PageSize::Size2M ? 1 : 0);
        const uint64_t key = iommu::translationKey(did, iova, size);
        const uint64_t index = iommu::translationIndex(iova, size);
        const uint32_t part = partitionOf(sid);
        if (_devtlb.lookup(key, index, part))
            return;
        mem::Addr host = 0;
        if (_prefetch.lookup(did, iova, size, host)) {
            _devtlb.insert(key, index, host, part);
            return;
        }
        if (const mem::Addr *h = _iotlb.lookup(key, index)) {
            _devtlb.insert(key, index, *h, part);
            return;
        }
        // Paging-structure caches cover the upper walk levels; key
        // on the page-directory range of the gIOVA.
        const uint64_t l2_key =
            iommu::translationKey(did, iova >> 9, size);
        const uint64_t l2_index =
            iommu::translationIndex(iova >> 9, size);
        const bool l2_hit = _l2.lookup(l2_key, l2_index) != nullptr;
        const uint64_t l3_key =
            iommu::translationKey(did, iova >> 18, size);
        const uint64_t l3_index =
            iommu::translationIndex(iova >> 18, size);
        const bool l3_hit =
            l2_hit || _l3.lookup(l3_key, l3_index) != nullptr;
        ++_walks;
        mem::PageTable &table = _tables.get(did);
        mem::Translation tr = table.translate(iova);
        if (!tr.valid) {
            // The trace maps pages before first use, but replayed
            // unmaps can race a later packet; map on demand like
            // the timed model's walk path does.
            table.map(iova, size);
            tr = table.translate(iova);
        }
        if (!l3_hit)
            _l3.insert(l3_key, l3_index, tr.hostAddr);
        if (!l2_hit)
            _l2.insert(l2_key, l2_index, tr.hostAddr);
        _iotlb.insert(key, index, tr.hostAddr);
        _devtlb.insert(key, index, tr.hostAddr, part);
    }

    cache::SetAssocCache<mem::Addr> _devtlb;
    uint32_t _devtlbPartitions;
    cache::SetAssocCache<mem::Addr> _iotlb;
    cache::SetAssocCache<mem::Addr> _l2;
    cache::SetAssocCache<mem::Addr> _l3;
    core::PrefetchUnit _prefetch;
    iommu::PageTableDirectory _tables;
    util::FlatMap<mem::DomainId, uint64_t> _lastIova;
    uint64_t _translations = 0;
    uint64_t _walks = 0;
};

/**
 * Walk storm: a TLB-less tenant-lifecycle replay that lands every
 * single probe on the open-addressed map structures this PR's
 * tentpole replaced — the page-table directory, the per-domain page
 * tables (populated and churned through the trace's map/unmap ops),
 * the SID-predictor table, and the per-tenant history map.
 *
 * The trace's packets are regrouped into tenant *windows* (in order
 * of first appearance): at most LiveWindow tenants are live at a
 * time, their packets are served in round-robin bursts (preserving
 * each tenant's own packet order), and once a window's packets are
 * exhausted every tenant in it detaches — its page table and history
 * entry are torn down — before the next window attaches. This is the
 * paper's hyper-tenancy premise taken to its worst case: tenants
 * arrive, map their rings and buffers, walk on every translation
 * (no TLBs here), and leave, thousands of times per run.
 *
 * This is the rate scripts/check_repo.sh gates at >= 1.3x: unlike
 * the functional replay above, no cycles go to replacement-policy
 * bookkeeping that both layout modes share, so the ratio reflects
 * the attach / probe / detach cost of the data layouts and nothing
 * else.
 */
class WalkStorm
{
  public:
    /** Concurrently live tenants (fig10's top tenant count). */
    static constexpr size_t LiveWindow = 64;
    /** Packets served per tenant per round-robin turn. */
    static constexpr size_t Burst = 4;

    struct Window
    {
        /**
         * The window's packets, materialized in visit order with
         * their ops re-based into `ops`, so the timed replay
         * streams sequentially instead of gathering from the trace
         * at random — that gather cost is layout-independent and
         * would only dilute the measured ratio.
         */
        std::vector<trace::PacketRecord> packets;
        std::vector<trace::PageOp> ops;
        std::vector<mem::DomainId> tenants;
    };

    /**
     * Precomputed visit order (built outside the timed region):
     * per-window round-robin bursts over the window's tenants.
     */
    static std::vector<Window>
    makeSchedule(const trace::HyperTrace &trace)
    {
        std::vector<mem::DomainId> order;
        std::vector<std::vector<uint32_t>> perTenant;
        util::FlatMap<mem::DomainId, uint32_t> indexOf;
        for (uint32_t i = 0; i < trace.packets.size(); ++i) {
            const mem::DomainId sid = trace.packets[i].sid;
            auto [idx, inserted] = indexOf.tryEmplace(sid);
            if (inserted) {
                *idx = static_cast<uint32_t>(order.size());
                order.push_back(sid);
                perTenant.emplace_back();
            }
            perTenant[*idx].push_back(i);
        }

        std::vector<Window> windows;
        for (size_t w0 = 0; w0 < order.size(); w0 += LiveWindow) {
            Window win;
            const size_t w1 =
                std::min(w0 + LiveWindow, order.size());
            win.tenants.assign(order.begin() + w0,
                               order.begin() + w1);
            std::vector<size_t> cursor(w1 - w0, 0);
            bool more = true;
            while (more) {
                more = false;
                for (size_t t = 0; t < cursor.size(); ++t) {
                    const auto &list = perTenant[w0 + t];
                    for (size_t b = 0;
                         b < Burst && cursor[t] < list.size();
                         ++b) {
                        trace::PacketRecord pkt =
                            trace.packets[list[cursor[t]++]];
                        const auto *ops =
                            trace.ops.data() + pkt.opBegin;
                        pkt.opBegin = static_cast<uint32_t>(
                            win.ops.size());
                        win.ops.insert(win.ops.end(), ops,
                                       ops + pkt.opCount);
                        win.packets.push_back(pkt);
                    }
                    more = more || cursor[t] < list.size();
                }
            }
            windows.push_back(std::move(win));
        }
        return windows;
    }

    explicit WalkStorm(const core::SystemConfig &cfg)
        : _predictor(cfg.device.prefetch.historyLength),
          _tables(cfg.seed)
    {}

    void
    replay(const std::vector<Window> &schedule)
    {
        for (const Window &win : schedule) {
            for (const trace::PacketRecord &pkt : win.packets) {
                const mem::DomainId did = pkt.sid;
                for (uint16_t o = 0; o < pkt.opCount; ++o) {
                    const trace::PageOp &op =
                        win.ops[pkt.opBegin + o];
                    mem::PageTable &table = _tables.get(did);
                    if (op.isMap)
                        table.map(op.pageBase, op.size);
                    else
                        table.unmap(op.pageBase);
                }
                _predictor.train(pkt.sid);
                if (const auto next = _predictor.predict(pkt.sid))
                    _history[*next] ^= pkt.ringIova;
                _history[did] += 1;
                walk(did, pkt.ringIova, mem::PageSize::Size4K);
                walk(did, pkt.dataIova,
                     pkt.dataHuge ? mem::PageSize::Size2M
                                  : mem::PageSize::Size4K);
                walk(did, pkt.notifyIova, mem::PageSize::Size4K);
            }
            // Tenant teardown: the whole window leaves the host.
            for (const mem::DomainId did : win.tenants) {
                _detaches += _tables.erase(did);
                _history.erase(did);
            }
        }
    }

    uint64_t walks() const { return _walks; }
    uint64_t mapped() const { return _mapped; }
    uint64_t detaches() const { return _detaches; }

  private:
    void
    walk(mem::DomainId did, mem::Iova iova, mem::PageSize size)
    {
        ++_walks;
        mem::PageTable &table = _tables.get(did);
        mem::Translation tr = table.translate(iova);
        if (!tr.valid) {
            table.map(iova, size);
            tr = table.translate(iova);
        }
        _mapped += tr.valid;
    }

    core::SidPredictor _predictor;
    iommu::PageTableDirectory _tables;
    util::FlatMap<mem::DomainId, uint64_t> _history;
    uint64_t _walks = 0;
    uint64_t _mapped = 0;
    uint64_t _detaches = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const auto wall0 = std::chrono::steady_clock::now();

    core::BenchOptions ropts;
    ropts.jsonPath = opts.jsonPath;
    bench::JsonReport report("translation_path_microbench", ropts);

#ifdef HYPERSIO_LEGACY_STRUCTURES
    const int legacy_mode = 1;
#else
    const int legacy_mode = 0;
#endif

    constexpr workload::AdversarialPattern Patterns[] = {
        workload::AdversarialPattern::UniformRandom,
        workload::AdversarialPattern::PbThrash,
        workload::AdversarialPattern::HugeMix,
    };

    std::printf("translation path microbench: %llu packets x %u "
                "tenants x %u reps per pattern (%s structures)\n",
                (unsigned long long)opts.packets, opts.tenants,
                opts.reps, legacy_mode ? "legacy" : "flat");
    std::printf("%-16s %12s %10s %10s %10s %10s %10s %10s\n",
                "pattern", "packets/s", "walks", "devtlb", "pb",
                "iotlb", "l2", "l3");

    uint64_t total_packets = 0;
    double total_wall = 0.0;
    uint64_t total_fn_packets = 0;
    double total_fn_wall = 0.0;
    uint64_t total_ws_packets = 0;
    double total_ws_wall = 0.0;

    for (const auto pattern : Patterns) {
        workload::AdversarialConfig tcfg;
        tcfg.tenants = opts.tenants;
        tcfg.packets = opts.packets;
        tcfg.seed = 42;
        const trace::HyperTrace trace =
            workload::makeAdversarialTrace(pattern, tcfg);

        ProbeCounts probes;
        double wall = 0.0;
        for (unsigned rep = 0;
             !opts.functionalOnly && rep < opts.reps; ++rep) {
            core::SystemConfig cfg = core::SystemConfig::hypertrio();
            core::System system(cfg);
            const auto t0 = std::chrono::steady_clock::now();
            const core::RunResults results = system.run(trace);
            const double dt = wallSeconds(t0);
            wall = rep == 0 ? dt : std::min(wall, dt);

            // A run that fails to process the whole trace must not
            // produce a rate at all.
            HYPERSIO_ASSERT(results.packetsProcessed ==
                                trace.packets.size(),
                            "run processed %llu of %zu packets",
                            (unsigned long long)
                                results.packetsProcessed,
                            trace.packets.size());

            ProbeCounts p;
            p.translations = results.translations;
            p.devtlb = system.device().devtlbStats().lookups;
            p.context = system.device().contextStats().lookups;
            const cache::CacheStats *pb =
                system.device().prefetchBufferStats();
            p.pb = pb ? pb->lookups : 0;
            p.iotlb = system.iommuUnit().iotlbStats().lookups;
            p.l2 = system.iommuUnit().l2Stats().lookups;
            p.l3 = system.iommuUnit().l3Stats().lookups;
            p.walks = results.walks;
            p.iommuRequests = results.iommuRequests;

            if (rep == 0) {
                probes = p;
            } else {
                // The simulator is deterministic: every rep must
                // probe identically.
                HYPERSIO_ASSERT(p.walks == probes.walks &&
                                    p.devtlb == probes.devtlb &&
                                    p.iotlb == probes.iotlb,
                                "probe counts drifted across reps");
            }
        }

        // Rates are best-of-reps (minimum wall time): the counts are
        // deterministic across reps, so the fastest rep is the one
        // least disturbed by background noise on the host.
        const uint64_t packets = trace.packets.size();
        const char *name = workload::adversarialPatternName(pattern);
        const std::string prefix = name;
        if (!opts.functionalOnly) {
            total_packets += packets;
            total_wall += wall;
            const double pps =
                bench::perSecond(packets, wall);
            std::printf("%-16s %12.0f %10llu %10llu %10llu %10llu "
                        "%10llu %10llu\n",
                        name, pps, (unsigned long long)probes.walks,
                        (unsigned long long)probes.devtlb,
                        (unsigned long long)probes.pb,
                        (unsigned long long)probes.iotlb,
                        (unsigned long long)probes.l2,
                        (unsigned long long)probes.l3);

            report.addScalar(prefix + "_packets",
                             static_cast<double>(
                                 trace.packets.size()));
            report.addScalar(prefix + "_packets_per_sec", pps);
            report.addScalar(prefix + "_translations",
                             static_cast<double>(
                                 probes.translations));
            report.addScalar(prefix + "_devtlb_lookups",
                             static_cast<double>(probes.devtlb));
            report.addScalar(prefix + "_pb_lookups",
                             static_cast<double>(probes.pb));
            report.addScalar(prefix + "_context_lookups",
                             static_cast<double>(probes.context));
            report.addScalar(prefix + "_iotlb_lookups",
                             static_cast<double>(probes.iotlb));
            report.addScalar(prefix + "_l2_lookups",
                             static_cast<double>(probes.l2));
            report.addScalar(prefix + "_l3_lookups",
                             static_cast<double>(probes.l3));
            report.addScalar(prefix + "_walks",
                             static_cast<double>(probes.walks));
            report.addScalar(prefix + "_iommu_requests",
                             static_cast<double>(
                                 probes.iommuRequests));
        }

        // Functional replay of the same trace: structure traffic
        // only, the layout-sensitive measurement (see FunctionalPath).
        double fn_wall = 0.0;
        uint64_t fn_translations = 0;
        uint64_t fn_walks = 0;
        uint64_t fn_lookups = 0;
        for (unsigned rep = 0; rep < opts.reps; ++rep) {
            core::SystemConfig cfg = core::SystemConfig::hypertrio();
            FunctionalPath path(cfg);
            const auto t0 = std::chrono::steady_clock::now();
            path.replay(trace);
            const double dt = wallSeconds(t0);
            fn_wall = rep == 0 ? dt : std::min(fn_wall, dt);

            HYPERSIO_ASSERT(path.translations() ==
                                trace.packets.size() * 3,
                            "functional replay translated %llu of "
                            "%llu requests",
                            (unsigned long long)path.translations(),
                            (unsigned long long)(trace.packets.size() *
                                                 3));
            if (rep == 0) {
                fn_translations = path.translations();
                fn_walks = path.walks();
                fn_lookups = path.devtlbLookups() +
                             path.pbLookups() + path.iotlbLookups() +
                             path.l2Lookups() + path.l3Lookups();
            } else {
                HYPERSIO_ASSERT(path.walks() == fn_walks,
                                "functional probe counts drifted "
                                "across reps");
            }
        }
        const double fn_pps = bench::perSecond(packets, fn_wall);
        std::printf("%-16s %12.0f   (functional replay, %llu probes)\n",
                    name, fn_pps, (unsigned long long)fn_lookups);
        total_fn_packets += packets;
        total_fn_wall += fn_wall;
        report.addScalar(prefix + "_functional_packets_per_sec",
                         fn_pps);
        report.addScalar(prefix + "_functional_translations",
                         static_cast<double>(fn_translations));
        report.addScalar(prefix + "_functional_walks",
                         static_cast<double>(fn_walks));
        report.addScalar(prefix + "_functional_probe_lookups",
                         static_cast<double>(fn_lookups));

        // Walk storm: every probe on the flat-map structures under
        // tenant-lifecycle churn (the gated measurement, see
        // WalkStorm). The visit schedule is deterministic and built
        // once, outside the timed region.
        const std::vector<WalkStorm::Window> schedule =
            WalkStorm::makeSchedule(trace);
        double ws_wall = 0.0;
        uint64_t ws_walks = 0;
        uint64_t ws_mapped = 0;
        uint64_t ws_detaches = 0;
        for (unsigned rep = 0; rep < opts.reps; ++rep) {
            core::SystemConfig cfg = core::SystemConfig::hypertrio();
            WalkStorm storm(cfg);
            const auto t0 = std::chrono::steady_clock::now();
            storm.replay(schedule);
            const double dt = wallSeconds(t0);
            ws_wall = rep == 0 ? dt : std::min(ws_wall, dt);

            HYPERSIO_ASSERT(storm.walks() ==
                                trace.packets.size() * 3,
                            "walk storm performed %llu of %llu "
                            "walks",
                            (unsigned long long)storm.walks(),
                            (unsigned long long)(trace.packets.size() *
                                                 3));
            if (rep == 0) {
                ws_walks = storm.walks();
                ws_mapped = storm.mapped();
                ws_detaches = storm.detaches();
            } else {
                HYPERSIO_ASSERT(storm.mapped() == ws_mapped &&
                                    storm.detaches() == ws_detaches,
                                "walk-storm results drifted across "
                                "reps");
            }
        }
        const double ws_pps = bench::perSecond(packets, ws_wall);
        std::printf("%-16s %12.0f   (walk storm, %llu walks)\n",
                    name, ws_pps, (unsigned long long)ws_walks);
        total_ws_packets += packets;
        total_ws_wall += ws_wall;
        report.addScalar(prefix + "_walkstorm_packets_per_sec",
                         ws_pps);
        report.addScalar(prefix + "_walkstorm_walks",
                         static_cast<double>(ws_walks));
        report.addScalar(prefix + "_walkstorm_mapped_walks",
                         static_cast<double>(ws_mapped));
        report.addScalar(prefix + "_walkstorm_detaches",
                         static_cast<double>(ws_detaches));
    }

    // Admit-batch sweep: one adversarial trace replayed through the
    // event-driven path at increasing arrival-batch sizes. All
    // counts (drops included) are deterministic per batch size —
    // only the rates move with the host — so the sweep doubles as a
    // semantic pin on the batching refactor: processed == trace
    // size at every width, with batch 1 reproducing the classic
    // one-event-per-slot arrival process.
    if (!opts.functionalOnly) {
        workload::AdversarialConfig tcfg;
        tcfg.tenants = opts.tenants;
        tcfg.packets = opts.packets;
        tcfg.seed = 42;
        const trace::HyperTrace trace =
            workload::makeAdversarialTrace(
                workload::AdversarialPattern::UniformRandom, tcfg);
        std::printf("%-16s %12s %10s %10s\n", "admit batch",
                    "packets/s", "drops", "walks");
        for (const unsigned batch : {1u, 4u, 16u}) {
            double wall = 0.0;
            uint64_t drops = 0;
            uint64_t walks = 0;
            for (unsigned rep = 0; rep < opts.reps; ++rep) {
                core::SystemConfig cfg =
                    core::SystemConfig::hypertrio();
                cfg.admitBatch = batch;
                core::System system(cfg);
                const auto t0 = std::chrono::steady_clock::now();
                const core::RunResults results = system.run(trace);
                const double dt = wallSeconds(t0);
                wall = rep == 0 ? dt : std::min(wall, dt);

                HYPERSIO_ASSERT(results.packetsProcessed ==
                                    trace.packets.size(),
                                "batch %u processed %llu of %zu "
                                "packets",
                                batch,
                                (unsigned long long)
                                    results.packetsProcessed,
                                trace.packets.size());
                if (rep == 0) {
                    drops = results.packetsDropped;
                    walks = results.walks;
                } else {
                    HYPERSIO_ASSERT(
                        results.packetsDropped == drops &&
                            results.walks == walks,
                        "batch-sweep counts drifted across reps");
                }
            }
            const double pps =
                bench::perSecond(trace.packets.size(), wall);
            std::printf("%-16u %12.0f %10llu %10llu\n", batch, pps,
                        (unsigned long long)drops,
                        (unsigned long long)walks);
            const std::string prefix =
                "admit_batch_" + std::to_string(batch);
            report.addScalar(prefix + "_packets_per_sec", pps);
            report.addScalar(prefix + "_drop_events",
                             static_cast<double>(drops));
            report.addScalar(prefix + "_walks",
                             static_cast<double>(walks));
        }
    }

    const double total_pps =
        bench::perSecond(total_packets, total_wall);
    const double total_fn_pps =
        bench::perSecond(total_fn_packets, total_fn_wall);
    std::printf("total: %llu packets in %.2f s = %.0f packets/s "
                "(timed), %.0f packets/s (functional)\n",
                (unsigned long long)total_packets, total_wall,
                total_pps, total_fn_pps);

    report.addScalar("legacy_structures",
                     static_cast<double>(legacy_mode));
    // Probe-backend identity: width is the layout contract (always
    // 16, even scalar); simd_probes records whether a vector unit
    // actually backs the group compares. Gate 9 diffs the counts of
    // a simd_probes=1 and a simd_probes=0 build — they must be
    // bit-identical, rates aside.
    report.addScalar("probe_group_width",
                     static_cast<double>(util::simd::GroupWidth));
    report.addScalar(
        "simd_probes",
        std::strcmp(util::simd::DefaultGroupOps::name, "scalar")
            ? 1.0
            : 0.0);
    report.addScalar("total_packets",
                     static_cast<double>(total_packets));
    report.addScalar("total_packets_per_sec", total_pps);
    report.addScalar("total_functional_packets_per_sec",
                     total_fn_pps);
    const double total_ws_pps =
        bench::perSecond(total_ws_packets, total_ws_wall);
    std::printf("walk storm total: %.0f packets/s\n", total_ws_pps);
    report.addScalar("total_walkstorm_packets_per_sec",
                     total_ws_pps);
    report.write(wallSeconds(wall0));
    return 0;
}
