/**
 * @file
 * Event-fusion microbenchmark: full-system translation storms whose
 * hit paths are dominated by deterministic fixed-latency hops, run
 * with the fused fast path (sim/event_queue.hh::tryFuseAdvance)
 * against the event-per-hop reference.
 *
 * Three storms, each a complete System::run over a synthetic trace:
 *
 *   hit_storm      line-rate arrivals, per-tenant working set of
 *                  three pages — after warmup every request class is
 *                  a DevTLB hit, so a packet's translation chain is
 *                  pure 2 ns hops (3 events -> 1 with fusion).
 *   chipset_storm  sparse arrivals (2 Gb/s) with a data working set
 *                  that thrashes the DevTLB but fits the IOTLB: the
 *                  full device->PCIe->IOMMU->PCIe->device round
 *                  trip is deterministic and fuses end to end.
 *   walk_storm     sparse arrivals, every data page cold: each data
 *                  translation walks through the memory model
 *                  (never fusible), bounding the win on walk-bound
 *                  workloads.
 *
 * The headline scalar `total_walkstorm_packets_per_sec` aggregates
 * all three storms (sum of packets over sum of wall time);
 * check_repo.sh gate 12 forms the cross-build ratio of that scalar
 * between a -DHYPERSIO_EVENT_FUSION=ON and an =OFF build, after
 * requiring every deterministic count scalar to match exactly.
 *
 * Usage:
 *   event_fusion_microbench [--packets N] [--tenants N] [--reps N]
 *       [--smoke] [--check-speedup X] [--json FILE]
 *
 * `--check-speedup X` additionally runs every storm with the
 * runtime knob off (SystemConfig::eventFusion = false) in the same
 * binary, asserts the two legs' RunResults and stat trees are
 * byte-identical, and fails unless the aggregate fused/per-hop
 * rate ratio reaches X. In a -DHYPERSIO_EVENT_FUSION=OFF build the
 * A/B would compare the reference against itself, so the check is
 * skipped with a notice.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/system.hh"
#include "json_report.hh"
#include "util/logging.hh"

namespace
{

using namespace hypersio;
using bench::wallSeconds;

struct Options
{
    uint64_t packets = 240000; ///< hit-storm packets (others scale)
    unsigned tenants = 8;
    unsigned reps = 3;
    double checkSpeedup = 0.0;
    std::string jsonPath;
    bool smoke = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s [--packets N] [--tenants N] [--reps N] [--smoke]\n"
        "          [--check-speedup X] [--json FILE]\n"
        "  --packets N        hit-storm packets (default 240000);\n"
        "                     chipset storm runs ~N/2, walk ~N/16\n"
        "  --tenants N        tenants per storm (default 8)\n"
        "  --reps N           timed repetitions, best wall counts\n"
        "  --smoke            small run for CI smoke\n"
        "  --check-speedup X  fail unless fused/per-hop >= X on the\n"
        "                     aggregate packet rate (in-binary A/B)\n"
        "  --json FILE        write a hypersio-bench-1 report\n",
        argv0);
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            return argv[++i];
        };
        if (arg == "--packets") {
            opts.packets = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--tenants") {
            opts.tenants = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (arg == "--reps") {
            opts.reps = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--check-speedup") {
            opts.checkSpeedup = std::strtod(value(), nullptr);
        } else if (arg == "--json") {
            opts.jsonPath = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (opts.smoke) {
        opts.packets = 4000;
        opts.reps = 1;
    }
    if (opts.packets < 100 || opts.tenants == 0 || opts.reps == 0)
        usage(argv[0], 2);
    return opts;
}

/**
 * Trace builder that attaches the map op for each page to the first
 * packet that touches it (the device applies a packet's ops at
 * accept, so the functional tables stay consistent).
 */
class StormTrace
{
  public:
    explicit StormTrace(unsigned tenants)
    {
        _trace.numTenants = tenants;
        _trace.seed = 42;
    }

    void
    addPacket(trace::SourceId sid, mem::Iova ring, mem::Iova data,
              bool data_huge, mem::Iova notify)
    {
        trace::PacketRecord pkt;
        pkt.sid = sid;
        pkt.ringIova = ring;
        pkt.dataIova = data;
        pkt.dataHuge = data_huge;
        pkt.notifyIova = notify;
        pkt.opBegin = static_cast<uint32_t>(_trace.ops.size());
        mapIfNew(sid, ring, mem::PageSize::Size4K);
        mapIfNew(sid, data,
                 data_huge ? mem::PageSize::Size2M
                           : mem::PageSize::Size4K);
        mapIfNew(sid, notify, mem::PageSize::Size4K);
        pkt.opCount = static_cast<uint16_t>(_trace.ops.size() -
                                            pkt.opBegin);
        _trace.packets.push_back(pkt);
    }

    trace::HyperTrace take() { return std::move(_trace); }

  private:
    void
    mapIfNew(trace::SourceId sid, mem::Iova iova, mem::PageSize size)
    {
        const mem::Addr base = mem::pageBase(iova, size);
        const uint64_t key = (uint64_t{sid} << 40) ^ base;
        if (!_mapped.insert(key).second)
            return;
        _trace.ops.push_back({base, size, /*isMap=*/true});
    }

    trace::HyperTrace _trace;
    std::set<uint64_t> _mapped;
};

/** Base system configuration shared by every storm. */
core::SystemConfig
stormConfig(const char *name)
{
    core::SystemConfig config = core::SystemConfig::base();
    config.name = name;
    // Deep PTB so the pipeline keeps multiple packets in flight
    // instead of measuring drop bookkeeping.
    config.device.ptbEntries = 32;
    return config;
}

/**
 * hit_storm: line-rate arrivals into a three-page per-tenant working
 * set. Every request class is a DevTLB hit after its first touch, so
 * the whole chain is 2 ns deterministic hops.
 */
trace::HyperTrace
makeHitStorm(unsigned tenants, uint64_t packets)
{
    StormTrace storm(tenants);
    for (uint64_t i = 0; i < packets; ++i) {
        const trace::SourceId sid =
            static_cast<trace::SourceId>(i % tenants);
        // Per-tenant pages spread across DevTLB sets (the device TLB
        // indexes raw iova bits, so same-iova tenants would conflict
        // — Section IV-D; this storm wants the opposite).
        storm.addPacket(sid, (0x100 + sid * 3) * 0x1000ULL,
                        0x40000000ULL + sid * 0x200000ULL,
                        /*data_huge=*/true,
                        (0x101 + sid * 3) * 0x1000ULL);
    }
    return storm.take();
}

/**
 * chipset_storm: sparse arrivals; the data stream cycles a working
 * set sized to thrash the 512-entry DevTLB while fitting easily in
 * the 32K-entry IOTLB, so the steady state is DevTLB miss + IOTLB
 * hit — the full fixed-latency chipset round trip.
 */
trace::HyperTrace
makeChipsetStorm(unsigned tenants, uint64_t packets)
{
    // Working sets sized to miss the 64-entry DevTLB essentially
    // always while fitting the 4096-entry IOTLB with room to spare
    // (8 tenants x 288 pages = 2304 entries): every request class
    // becomes a full deterministic chipset round trip.
    constexpr uint64_t DataPages = 192;
    constexpr uint64_t RingPages = 48;
    StormTrace storm(tenants);
    for (uint64_t i = 0; i < packets; ++i) {
        const trace::SourceId sid =
            static_cast<trace::SourceId>(i % tenants);
        const uint64_t turn = i / tenants;
        storm.addPacket(
            sid, 0x10000000ULL + (turn % RingPages) * 0x1000,
            0x80000000ULL + (turn % DataPages) * 0x1000,
            /*data_huge=*/false,
            0x20000000ULL + ((turn * 7) % RingPages) * 0x1000);
    }
    return storm.take();
}

/**
 * walk_storm: sparse arrivals, every data page fresh — each data
 * translation misses everything and walks through the memory model,
 * the canonical never-fusible path.
 */
trace::HyperTrace
makeWalkStorm(unsigned tenants, uint64_t packets)
{
    StormTrace storm(tenants);
    for (uint64_t i = 0; i < packets; ++i) {
        const trace::SourceId sid =
            static_cast<trace::SourceId>(i % tenants);
        storm.addPacket(sid, 0x10000,
                        0x100000000ULL + i * 0x1000,
                        /*data_huge=*/false, 0x20000);
    }
    return storm.take();
}

/** One measured leg of one storm. */
struct StormRun
{
    core::RunResults results;
    std::string statsBytes;
    uint64_t fusedHops = 0;
    uint64_t dispatched = 0;
    double wall = 0.0; ///< best-of-reps
};

/**
 * Runs `trace` under `config` `reps` times (fresh System each rep;
 * the model is single-shot) and keeps the best wall time. Results
 * must not drift across reps — the workload is deterministic.
 */
StormRun
runStorm(const core::SystemConfig &config,
         const trace::HyperTrace &trace, unsigned reps)
{
    StormRun run;
    for (unsigned rep = 0; rep < reps; ++rep) {
        core::System system(config);
        const auto t0 = std::chrono::steady_clock::now();
        core::RunResults results = system.run(trace);
        const double wall = wallSeconds(t0);
        std::ostringstream stats;
        system.dumpStats(stats);
        if (rep == 0) {
            run.results = results;
            run.statsBytes = stats.str();
            run.fusedHops = system.eventQueue().fusedHops();
            run.dispatched = system.eventQueue().executed();
            run.wall = wall;
        } else {
            HYPERSIO_ASSERT(results == run.results &&
                                stats.str() == run.statsBytes,
                            "storm results drifted across reps");
            if (wall < run.wall)
                run.wall = wall;
        }
    }
    return run;
}

struct StormSpec
{
    const char *name;
    trace::HyperTrace (*make)(unsigned, uint64_t);
    /** Link rate: line rate for the hit storm, sparse otherwise. */
    double gbps;
    /** Packet-count scale relative to --packets. */
    uint64_t num, den;
};

constexpr StormSpec Storms[] = {
    {"hit_storm", &makeHitStorm, 200.0, 1, 1},
    {"chipset_storm", &makeChipsetStorm, 2.0, 1, 2},
    {"walk_storm", &makeWalkStorm, 2.0, 1, 16},
};

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const auto wall0 = std::chrono::steady_clock::now();

    core::BenchOptions ropts;
    ropts.jsonPath = opts.jsonPath;
    bench::JsonReport report("event_fusion_microbench", ropts);

    const bool check = opts.checkSpeedup > 0.0;
    const bool can_ab = sim::EventQueue::FusionCompiledIn;
    if (check && !can_ab)
        std::printf("fusion not compiled in "
                    "(-DHYPERSIO_EVENT_FUSION=OFF); skipping the "
                    "in-binary A/B check\n");

    std::printf("event fusion microbench: %llu packets x %u tenants "
                "(hit storm; fusion %s)\n",
                (unsigned long long)opts.packets, opts.tenants,
                can_ab ? "compiled in" : "compiled out");
    std::printf("%-16s %12s %12s %12s %10s\n", "storm", "packets/s",
                "fused hops", "dispatched", "walks");

    uint64_t total_packets = 0;
    double total_wall = 0.0;
    double total_perhop_wall = 0.0;

    for (const auto &spec : Storms) {
        const uint64_t packets = opts.packets * spec.num / spec.den;
        const trace::HyperTrace trace =
            spec.make(opts.tenants, packets);

        core::SystemConfig config = stormConfig(spec.name);
        config.link.gbps = spec.gbps;
        config.eventFusion = true;
        const StormRun fused = runStorm(config, trace, opts.reps);

        HYPERSIO_ASSERT(fused.results.packetsProcessed ==
                            trace.packets.size(),
                        "storm dropped packets (%llu of %zu)",
                        (unsigned long long)
                            fused.results.packetsProcessed,
                        trace.packets.size());

        const double pps =
            bench::perSecond(packets, fused.wall);
        std::printf("%-16s %12.0f %12llu %12llu %10llu\n",
                    spec.name, pps,
                    (unsigned long long)fused.fusedHops,
                    (unsigned long long)fused.dispatched,
                    (unsigned long long)fused.results.walks);

        total_packets += packets;
        total_wall += fused.wall;

        const std::string prefix = spec.name;
        report.addScalar(prefix + "_packets",
                         static_cast<double>(packets));
        report.addScalar(prefix + "_translations",
                         static_cast<double>(
                             fused.results.translations));
        report.addScalar(prefix + "_walks",
                         static_cast<double>(fused.results.walks));
        report.addScalar(prefix + "_iommu_requests",
                         static_cast<double>(
                             fused.results.iommuRequests));
        report.addScalar(prefix + "_packets_per_sec", pps);
        // Deterministic fusion telemetry. Deliberately NOT a
        // count-suffixed name: it legitimately differs between
        // fusion-ON and fusion-OFF builds, and bench_speedup.py
        // requires count-suffixed scalars to match exactly.
        report.addScalar(prefix + "_fused_hops",
                         static_cast<double>(fused.fusedHops));

        if (check && can_ab) {
            core::SystemConfig perhop_config = config;
            perhop_config.eventFusion = false;
            const StormRun perhop =
                runStorm(perhop_config, trace, opts.reps);
            // The whole point: identical simulation, fewer
            // dispatches. Any observable difference is a bug.
            HYPERSIO_ASSERT(perhop.results == fused.results,
                            "fused and per-hop results differ");
            HYPERSIO_ASSERT(perhop.statsBytes == fused.statsBytes,
                            "fused and per-hop stat trees differ");
            HYPERSIO_ASSERT(perhop.fusedHops == 0,
                            "per-hop leg fused %llu hops",
                            (unsigned long long)perhop.fusedHops);
            HYPERSIO_ASSERT(perhop.dispatched ==
                                fused.dispatched + fused.fusedHops,
                            "event ledger mismatch: %llu != "
                            "%llu + %llu",
                            (unsigned long long)perhop.dispatched,
                            (unsigned long long)fused.dispatched,
                            (unsigned long long)fused.fusedHops);
            total_perhop_wall += perhop.wall;
            const double perhop_pps =
                bench::perSecond(packets, perhop.wall);
            std::printf("%-16s %12.0f   (per-hop reference, "
                        "%.2fx)\n",
                        "", perhop_pps,
                        bench::speedupRatio(pps, perhop_pps));
        }
    }

    const double total_pps =
        bench::perSecond(total_packets, total_wall);
    std::printf("walk storm total: %.0f packets/s\n", total_pps);
    report.addScalar("total_packets",
                     static_cast<double>(total_packets));
    report.addScalar("total_walkstorm_packets_per_sec", total_pps);
    report.addScalar("fusion_compiled", can_ab ? 1.0 : 0.0);
    report.write(wallSeconds(wall0));

    if (check && can_ab) {
        const double total_perhop_pps =
            bench::perSecond(total_packets, total_perhop_wall);
        const double speedup =
            bench::speedupRatio(total_pps, total_perhop_pps);
        std::printf("aggregate: fused %.0f vs per-hop %.0f "
                    "packets/s = %.2fx\n",
                    total_pps, total_perhop_pps, speedup);
        if (!bench::checkSpeedup("event fusion", speedup,
                                 opts.checkSpeedup))
            return 1;
    }
    return 0;
}
