/**
 * @file
 * Fig. 12a: effect of partitioning the DevTLB and the L2/L3 paging
 * caches (Table IV partition counts) on a design that still has a
 * single-entry PTB and no prefetching. Partitioning isolates
 * tenants (an eviction can only hit the evictor's own partition)
 * and extends the full-bandwidth regime, but cannot by itself make
 * translation scale to hyper-tenant counts.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 12a",
                  "partitioned DevTLB + L2/L3 TLBs (PTB=1, no "
                  "prefetch)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    auto partitioned_config = []() {
        core::SystemConfig config = core::SystemConfig::base();
        config.name = "partitioned";
        config.device.devtlb.partitions = 8;
        config.iommu.l2tlb.partitions = 32;
        config.iommu.l3tlb.partitions = 64;
        return config;
    };

    const bench::WallTimer timer;
    bench::JsonReport report("fig12a_partitioning", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (unsigned t : tenants) {
            batch.add(core::SystemConfig::base(), bench, t);
            batch.add(partitioned_config(), bench, t);
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<double> unpart;
        std::vector<double> part;
        for (unsigned t : tenants) {
            (void)t;
            unpart.push_back(batch.take().achievedGbps);
            part.push_back(batch.take().achievedGbps);
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants,
            {{"base", unpart}, {"partitioned", part}});
    }

    std::printf("\npaper: link utilisation stays high until "
                "multiple tenants share a partition; partitioning "
                "beats bigger/“smarter” DevTLBs but does not solve "
                "hyper-tenant scalability alone\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
