/**
 * @file
 * Fig. 12a: effect of partitioning the DevTLB and the L2/L3 paging
 * caches (Table IV partition counts) on a design that still has a
 * single-entry PTB and no prefetching. Partitioning isolates
 * tenants (an eviction can only hit the evictor's own partition)
 * and extends the full-bandwidth regime, but cannot by itself make
 * translation scale to hyper-tenant counts.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 12a",
                  "partitioned DevTLB + L2/L3 TLBs (PTB=1, no "
                  "prefetch)",
                  opts);

    core::ExperimentRunner runner(opts.scale, opts.seed);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<double> unpart;
        std::vector<double> part;
        for (unsigned t : tenants) {
            unpart.push_back(
                bench::runPoint(runner, core::SystemConfig::base(),
                                bench, t)
                    .achievedGbps);
            core::SystemConfig config = core::SystemConfig::base();
            config.name = "partitioned";
            config.device.devtlb.partitions = 8;
            config.iommu.l2tlb.partitions = 32;
            config.iommu.l3tlb.partitions = 64;
            part.push_back(
                bench::runPoint(runner, config, bench, t)
                    .achievedGbps);
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants,
            {{"base", unpart}, {"partitioned", part}});
    }

    std::printf("\npaper: link utilisation stays high until "
                "multiple tenants share a partition; partitioning "
                "beats bigger/“smarter” DevTLBs but does not solve "
                "hyper-tenant scalability alone\n");
    return 0;
}
