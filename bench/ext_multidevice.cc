/**
 * @file
 * Extension experiment: multi-host device sharing (Fig. 1).
 *
 * Several identical devices — one per host link — translate through
 * one shared chipset IOMMU. Aggregate offered load grows with the
 * device count while the chipset's caches, walker slots, and memory
 * stay fixed, so this measures how far the translation subsystem
 * can be shared before it becomes the bottleneck, for both Base and
 * HyperTRIO device designs.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Extension: multi-device",
                  "devices sharing one chipset IOMMU (Fig. 1 "
                  "scenario)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const bench::WallTimer timer;
    bench::JsonReport report("ext_multidevice", opts);
    const unsigned tenants = std::min(opts.maxTenants, 256u);

    std::printf("%u tenants total, iperf3 RR1, tenants split "
                "round-robin across devices\n\n",
                tenants);
    std::printf("%8s %12s %16s %16s %14s\n", "devices", "config",
                "aggregate Gb/s", "per-device Gb/s", "IOTLB hit");
    for (unsigned devices : {1u, 2u, 4u}) {
        for (bool hypertrio : {false, true}) {
            const auto &tr = runner.getTrace(
                workload::Benchmark::Iperf3, tenants,
                trace::parseInterleaving("RR1"));
            core::SystemConfig config =
                hypertrio ? core::SystemConfig::hypertrio()
                          : core::SystemConfig::base();
            config.seed = opts.seed;
            core::MultiSystem system(config, devices);
            const core::MultiRunResults r = system.run(tr);
            std::printf("%8u %12s %16.1f %16.1f %13.1f%%\n",
                        devices, config.name.c_str(), r.totalGbps,
                        r.totalGbps / devices,
                        r.iotlbHitRate * 100.0);
            const std::string tag = config.name + "@dev" +
                                    std::to_string(devices);
            report.addScalar(tag + ".total_gbps", r.totalGbps);
            report.addScalar(tag + ".iotlb_hit_rate",
                             r.iotlbHitRate);
        }
    }

    std::printf(
        "\nWith HyperTRIO devices the shared IOMMU serves several "
        "full links as long as its caches absorb the combined "
        "working set; Base devices bottleneck on their own PTB "
        "before the shared chipset saturates.\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
