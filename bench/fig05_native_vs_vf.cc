/**
 * @file
 * Fig. 5 analogue: cumulative I/O bandwidth for native versus
 * virtualized (VF) interfaces on a 10 Gb/s link.
 *
 * The paper's Intel-host study: a natively shared interface holds
 * ~9.5 Gb/s for any connection count, while the SR-IOV/VF path
 * collapses once more than ~8 connection pairs share the IOMMU
 * translation path. "Native" here bypasses translation entirely;
 * "VF" is the Base translated design.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 5",
                  "native vs VF cumulative bandwidth (10 Gb/s, "
                  "Intel-host analogue)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);

    const std::vector<unsigned> conns{1, 2, 4, 8, 12, 16, 24, 32};
    auto intel_config = []() {
        core::SystemConfig config = core::SystemConfig::base();
        config.name = "intel-analogue";
        config.link.gbps = 10.0;
        return config;
    };

    const bench::WallTimer timer;
    bench::JsonReport report("fig05_native_vs_vf", opts);
    bench::PointBatch batch(runner, &report);
    for (unsigned c : conns) {
        batch.add(intel_config(), workload::Benchmark::Iperf3, c,
                  "RR1", /*bypass=*/true);
        batch.add(intel_config(), workload::Benchmark::Iperf3, c);
    }
    batch.run(bench::progressSink(opts));

    std::vector<double> native;
    std::vector<double> vf;
    for (unsigned c : conns) {
        (void)c;
        native.push_back(batch.take().achievedGbps);
        vf.push_back(batch.take().achievedGbps);
    }

    core::printBandwidthTable(std::cout,
                              "cumulative bandwidth (Gb/s)", conns,
                              {{"native", native}, {"VF", vf}});
    std::printf("\npaper: native ~9.5 Gb/s throughout; VF matches "
                "native up to 8 pairs, then collapses to ~0.5 Gb/s "
                "beyond 16\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
