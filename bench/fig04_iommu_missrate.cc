/**
 * @file
 * Fig. 4 analogue: IOMMU TLB PTE miss rate versus number of parallel
 * connections.
 *
 * The paper measured this on an AMD host with hardware IOMMU
 * performance counters over a 10 Gb/s NIC: the miss rate stays below
 * 0.1% up to ~80 connections, then climbs to ~4.3% at 120. We
 * regenerate the experiment on the performance model with a 10 Gb/s
 * link and an Intel-sized IOMMU translation cache, sweeping the
 * connection count and reporting the chipset IOTLB miss rate and the
 * nested (page-table) read count.
 */

#include "bench_common.hh"

using namespace hypersio;

namespace
{

constexpr unsigned kConnSweep[] = {40, 60, 80, 90, 100, 110, 120};

core::SystemConfig
amdAnalogueConfig()
{
    core::SystemConfig config = core::SystemConfig::base();
    config.name = "amd-analogue";
    config.link.gbps = 10.0;
    // Sized so the capacity knee falls inside the measured
    // 80-120 connection window (8 hot pages per iperf3 tenant),
    // mirroring the AMD host's counter-visible IOMMU TLB.
    config.iommu.iotlb.entries = 768;
    config.iommu.iotlb.ways = 8;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 4",
                  "IOMMU TLB miss rate vs parallel connections "
                  "(10 Gb/s, AMD-host analogue)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);

    const bench::WallTimer timer;
    bench::JsonReport report("fig04_iommu_missrate", opts);
    bench::PointBatch batch(runner, &report);
    for (unsigned conns : kConnSweep)
        batch.add(amdAnalogueConfig(), workload::Benchmark::Iperf3,
                  conns);
    batch.run(bench::progressSink(opts));

    std::printf("%12s %16s %18s\n", "connections", "miss rate (%)",
                "nested PT reads");
    uint64_t reads_at_80 = 0;
    for (unsigned conns : kConnSweep) {
        const auto &results = batch.take();
        const double miss_rate =
            results.iommuRequests == 0
                ? 0.0
                : 100.0 * (1.0 - results.iotlbHitRate);
        const uint64_t reads = results.walks;
        if (conns == 80)
            reads_at_80 = reads;
        std::printf("%12u %16.2f %18llu\n", conns, miss_rate,
                    (unsigned long long)reads);
    }

    std::printf("\npaper: <0.1%% below 80 connections, ~4.3%% at "
                "120; nested reads grow >400x from 80 to 120\n");
    if (reads_at_80 > 0)
        std::printf("(model nested-read growth is reported in the "
                    "table above)\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
