/**
 * @file
 * Fig. 4 analogue: IOMMU TLB PTE miss rate versus number of parallel
 * connections.
 *
 * The paper measured this on an AMD host with hardware IOMMU
 * performance counters over a 10 Gb/s NIC: the miss rate stays below
 * 0.1% up to ~80 connections, then climbs to ~4.3% at 120. We
 * regenerate the experiment on the performance model with a 10 Gb/s
 * link and an Intel-sized IOMMU translation cache, sweeping the
 * connection count and reporting the chipset IOTLB miss rate and the
 * nested (page-table) read count.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 4",
                  "IOMMU TLB miss rate vs parallel connections "
                  "(10 Gb/s, AMD-host analogue)",
                  opts);

    core::ExperimentRunner runner(opts.scale, opts.seed);

    std::printf("%12s %16s %18s\n", "connections", "miss rate (%)",
                "nested PT reads");
    uint64_t reads_at_80 = 0;
    for (unsigned conns : {40u, 60u, 80u, 90u, 100u, 110u, 120u}) {
        core::SystemConfig config = core::SystemConfig::base();
        config.name = "amd-analogue";
        config.link.gbps = 10.0;
        // Sized so the capacity knee falls inside the measured
        // 80-120 connection window (8 hot pages per iperf3 tenant),
        // mirroring the AMD host's counter-visible IOMMU TLB.
        config.iommu.iotlb.entries = 768;
        config.iommu.iotlb.ways = 8;

        core::ExperimentPoint point;
        point.label = config.name;
        point.config = config;
        point.bench = workload::Benchmark::Iperf3;
        point.tenants = conns;
        point.interleave = trace::parseInterleaving("RR1");

        const auto row = runner.run(point);
        const double miss_rate =
            row.results.iommuRequests == 0
                ? 0.0
                : 100.0 *
                      (1.0 - row.results.iotlbHitRate);
        const uint64_t reads = row.results.walks;
        if (conns == 80)
            reads_at_80 = reads;
        std::printf("%12u %16.2f %18llu\n", conns, miss_rate,
                    (unsigned long long)reads);
    }

    std::printf("\npaper: <0.1%% below 80 connections, ~4.3%% at "
                "120; nested reads grow >400x from 80 to 120\n");
    if (reads_at_80 > 0)
        std::printf("(model nested-read growth is reported in the "
                    "table above)\n");
    return 0;
}
