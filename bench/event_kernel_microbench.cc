/**
 * @file
 * Event-kernel microbenchmark: the slab kernel (`sim::EventQueue`)
 * against the preserved pre-slab kernel
 * (`sim::LegacyEventQueue`), on identical deterministic workloads.
 *
 * Three mixes, each reported in million events/sec (Meps):
 *
 *   schedule_fire        schedule batches at pseudo-random ticks and
 *                        drain; captures sized like the translation
 *                        pipeline's hot-path closures (32 B — past
 *                        std::function's inline buffer, well inside
 *                        the slab record's).
 *   schedule_cancel_fire same, but half the scheduled events are
 *                        cancelled before the drain.
 *   closure_sweep        schedule_fire at 8/32/48/64-byte captures,
 *                        crossing both kernels' inline/heap
 *                        boundaries.
 *
 * Usage:
 *   event_kernel_microbench [--events N] [--smoke]
 *       [--check-speedup X] [--json FILE]
 *
 * `--check-speedup X` exits nonzero unless the slab kernel achieves
 * at least X times the legacy kernel's events/sec on the
 * schedule_fire mix (the repo gate runs with 1.3). The JSON report
 * (schema hypersio-bench-1) carries the exact per-mix event counts
 * (machine-independent) plus the measured rates and speedups
 * (machine-dependent; scripts/check_repo.sh compares them against
 * the committed BENCH_event_kernel.json with a loose tolerance).
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hh"
#include "core/bench_options.hh"
#include "json_report.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "util/logging.hh"

namespace
{

using namespace hypersio;

/** Deterministic xorshift64* stream; identical for both kernels. */
struct Rng
{
    uint64_t state;

    explicit Rng(uint64_t seed) : state(seed | 1) {}

    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }
};

/** Callback capture payload of a chosen size. */
template <size_t Bytes>
struct Payload
{
    static_assert(Bytes % 8 == 0);
    std::array<uint64_t, Bytes / 8> words;
};

using bench::wallSeconds;

/**
 * schedule_fire mix: rounds of `Batch` events at pseudo-random
 * offsets, drained after each round. Returns wall seconds; the
 * executed-event count lands in `executed`.
 */
template <typename Queue, size_t CaptureBytes>
double
scheduleFire(uint64_t events, uint64_t &executed, uint64_t &sink)
{
    constexpr uint64_t Batch = 256;
    Queue q;
    Rng rng(0x9e3779b97f4a7c15ULL);
    uint64_t local_sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t done = 0; done < events; done += Batch) {
        for (uint64_t i = 0; i < Batch; ++i) {
            Payload<CaptureBytes> p;
            for (auto &w : p.words)
                w = rng.next();
            q.scheduleAfter(rng.next() % 1024,
                            [&local_sink, p] {
                                local_sink += p.words.front() ^
                                              p.words.back();
                            });
        }
        q.run();
    }
    const double wall = wallSeconds(t0);
    executed = q.executed();
    sink += local_sink;
    return wall;
}

/**
 * schedule_cancel_fire mix: two events per slot, every other one
 * cancelled before the drain. Executed + cancelled events both count
 * as kernel work.
 */
template <typename Queue>
double
scheduleCancelFire(uint64_t events, uint64_t &processed,
                   uint64_t &sink)
{
    constexpr uint64_t Batch = 128;
    Queue q;
    Rng rng(0xc6a4a7935bd1e995ULL);
    uint64_t local_sink = 0;
    uint64_t cancelled = 0;
    std::vector<typename Queue::Handle> victims;
    victims.reserve(Batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t done = 0; done < events; done += 2 * Batch) {
        victims.clear();
        for (uint64_t i = 0; i < Batch; ++i) {
            Payload<32> p;
            for (auto &w : p.words)
                w = rng.next();
            q.scheduleAfter(rng.next() % 1024,
                            [&local_sink, p] {
                                local_sink += p.words.front();
                            });
            victims.push_back(q.scheduleAfter(
                rng.next() % 1024, [&local_sink, p] {
                    local_sink += p.words.back();
                }));
        }
        for (const auto &h : victims)
            cancelled += q.cancel(h) ? 1 : 0;
        q.run();
    }
    const double wall = wallSeconds(t0);
    HYPERSIO_ASSERT(cancelled == events / 2,
                    "cancel bookkeeping went wrong");
    processed = q.executed() + cancelled;
    sink += local_sink;
    return wall;
}

struct Options
{
    uint64_t events = 1u << 20;
    double checkSpeedup = 0.0;
    std::string jsonPath;
    bool smoke = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s [--events N] [--smoke] [--check-speedup X]\n"
        "          [--json FILE]\n"
        "  --events N         events per mix (default %u)\n"
        "  --smoke            small run for CI smoke (16K events)\n"
        "  --check-speedup X  fail unless slab/legacy >= X on the\n"
        "                     schedule_fire mix\n"
        "  --json FILE        write a hypersio-bench-1 report\n",
        argv0, 1u << 20);
    std::exit(code);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            return argv[++i];
        };
        if (arg == "--events") {
            opts.events = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--check-speedup") {
            opts.checkSpeedup = std::strtod(value(), nullptr);
        } else if (arg == "--json") {
            opts.jsonPath = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0], 2);
        }
    }
    if (opts.smoke)
        opts.events = 1u << 14;
    // Round to the batch granularity the mixes assume.
    opts.events &= ~uint64_t{255};
    if (opts.events == 0)
        opts.events = 256;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    const auto wall0 = std::chrono::steady_clock::now();

    core::BenchOptions ropts;
    ropts.jsonPath = opts.jsonPath;
    bench::JsonReport report("event_kernel_microbench", ropts);

    uint64_t sink = 0;
    std::printf("event kernel microbench: %llu events/mix\n",
                (unsigned long long)opts.events);
    std::printf("%-28s %12s %12s %9s\n", "mix", "legacy Meps",
                "slab Meps", "speedup");

    auto emit = [&](const char *mix, uint64_t count,
                    double legacy_wall, double slab_wall) {
        const double legacy_meps = bench::meps(count, legacy_wall);
        const double slab_meps = bench::meps(count, slab_wall);
        const double speedup =
            bench::speedupRatio(slab_meps, legacy_meps);
        std::printf("%-28s %12.2f %12.2f %8.2fx\n", mix,
                    legacy_meps, slab_meps, speedup);
        report.addScalar(std::string(mix) + "_events",
                         static_cast<double>(count));
        report.addScalar(std::string(mix) + "_legacy_meps",
                         legacy_meps);
        report.addScalar(std::string(mix) + "_slab_meps",
                         slab_meps);
        report.addScalar(std::string(mix) + "_speedup", speedup);
        return speedup;
    };

    // Warm both allocators/slabs once outside the timed regions.
    {
        uint64_t n = 0;
        scheduleFire<sim::EventQueue, 32>(1u << 12, n, sink);
        scheduleFire<sim::LegacyEventQueue, 32>(1u << 12, n, sink);
    }

    uint64_t count_legacy = 0;
    uint64_t count_slab = 0;

    // schedule_fire: the headline mix (translation hot path shape).
    double legacy_wall = scheduleFire<sim::LegacyEventQueue, 32>(
        opts.events, count_legacy, sink);
    double slab_wall = scheduleFire<sim::EventQueue, 32>(
        opts.events, count_slab, sink);
    HYPERSIO_ASSERT(count_legacy == count_slab,
                    "kernels executed different event counts");
    const double headline_speedup = emit(
        "schedule_fire", count_slab, legacy_wall, slab_wall);

    // schedule_cancel_fire.
    legacy_wall = scheduleCancelFire<sim::LegacyEventQueue>(
        opts.events, count_legacy, sink);
    slab_wall = scheduleCancelFire<sim::EventQueue>(
        opts.events, count_slab, sink);
    HYPERSIO_ASSERT(count_legacy == count_slab,
                    "kernels processed different event counts");
    emit("schedule_cancel_fire", count_slab, legacy_wall,
         slab_wall);

    // Closure-size sweep across both kernels' inline boundaries:
    // 8 B fits everywhere, 32/48 B spill std::function but stay in
    // the slab record, 64 B spills both.
    legacy_wall = scheduleFire<sim::LegacyEventQueue, 8>(
        opts.events, count_legacy, sink);
    slab_wall = scheduleFire<sim::EventQueue, 8>(opts.events,
                                                 count_slab, sink);
    emit("closure_8b", count_slab, legacy_wall, slab_wall);

    legacy_wall = scheduleFire<sim::LegacyEventQueue, 48>(
        opts.events, count_legacy, sink);
    slab_wall = scheduleFire<sim::EventQueue, 48>(opts.events,
                                                  count_slab, sink);
    emit("closure_48b", count_slab, legacy_wall, slab_wall);

    legacy_wall = scheduleFire<sim::LegacyEventQueue, 64>(
        opts.events, count_legacy, sink);
    slab_wall = scheduleFire<sim::EventQueue, 64>(opts.events,
                                                  count_slab, sink);
    emit("closure_64b", count_slab, legacy_wall, slab_wall);

    // The checksum depends on every callback having run; printing it
    // also keeps the whole pipeline observable (no dead-code wins).
    std::printf("checksum: %016llx\n", (unsigned long long)sink);

    report.write(wallSeconds(wall0));

    if (!bench::checkSpeedup("schedule_fire", headline_speedup,
                             opts.checkSpeedup))
        return 1;
    return 0;
}
