/**
 * @file
 * Mechanism tournament: the design-space lab the ablation bench
 * opens up, run as a cross-product bake-off. Every competitor keeps
 * the same link, PTB (32 entries) and walker budget, so the sweep
 * isolates the translation-caching mechanism itself:
 *
 *   base       shared LFU DevTLB (no isolation mechanism)
 *   part       PTag row partitioning (the paper's scheme)
 *   subentry   sub-entry sharing: same-layout tenants co-resident
 *              under one shared tag (MIG-style sub-entries)
 *   mmupf      MMU-aware DMA prefetcher along descriptor-ring
 *              strides (PrefetchKind::MmuDma)
 *   hypertrio  the paper's full design (partitions + SID-predictor
 *              prefetch)
 *   part+sub, sub+mmupf, full-combo — the combinations
 *
 * Each config reports achieved Gbps, utilization and hit rates per
 * tenant count (the JSON "points" block), plus a deterministic
 * area-proxy scalar ("area_kbits_<label>") derived from the config
 * geometry alone — SRAM bits for tags, payloads, sub-entries,
 * partition registers and prefetcher state — so the cost axis of
 * the bake-off is pinned by the committed BENCH_tournament.json
 * exactly like the performance axis (scripts/check_repo.sh gate 11).
 *
 *   mechanism_tournament --smoke --jobs 1 --json out.json  # gate
 *   mechanism_tournament --tenants 256 --jobs 8            # full
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace hypersio;

namespace
{

constexpr const char *UsageText =
    "options:\n"
    "  --smoke            quick deterministic sweep (scale 0.02,\n"
    "                     tenants {2, 8, 32}) for the ctest/repo "
    "gate\n"
    "  --tenants <n>      max tenant count of the sweep "
    "(default 256)\n"
    "  --scale <f>        trace scale (default 0.05; smoke 0.02)\n"
    "  --seed <n>         workload seed (default 42)\n"
    "  --jobs, -j <n>     worker threads (results identical for "
    "any value)\n"
    "  --verbose          progress lines to stderr\n"
    "  --json <file>      write the hypersio-bench-1 report";

core::BenchOptions
parseArgs(int argc, char **argv, bool &smoke)
{
    core::BenchOptions opts;
    opts.maxTenants = 256;
    bool scale_set = false, tenants_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--tenants") {
            uint64_t value = 0;
            if (!parseU64(next_value("--tenants"), value) ||
                value == 0 || value > 4096) {
                fatal("--tenants needs an integer in [1, 4096]");
            }
            opts.maxTenants = static_cast<unsigned>(value);
            tenants_set = true;
        } else if (arg == "--scale") {
            double value = 0.0;
            if (!parseDouble(next_value("--scale"), value) ||
                value <= 0.0)
                fatal("--scale needs a positive number");
            opts.scale = value;
            scale_set = true;
        } else if (arg == "--seed") {
            uint64_t value = 0;
            if (!parseU64(next_value("--seed"), value))
                fatal("--seed needs an integer");
            opts.seed = value;
        } else if (arg == "--jobs" || arg == "-j") {
            uint64_t value = 0;
            if (!parseU64(next_value(arg.c_str()), value) ||
                value == 0)
                fatal("%s needs a positive integer", arg.c_str());
            opts.jobs = static_cast<unsigned>(value);
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--json") {
            opts.jsonPath = next_value("--json");
        } else if (arg == "--help" || arg == "-h") {
            std::puts(UsageText);
            std::exit(0);
        } else {
            std::fputs(UsageText, stderr);
            std::fputc('\n', stderr);
            fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    if (smoke && !scale_set)
        opts.scale = 0.02;
    if (smoke && !tenants_set)
        opts.maxTenants = 32;
    return opts;
}

// ---- competitors -----------------------------------------------------

/** Common chassis: every mechanism gets the same PTB budget. */
core::SystemConfig
chassis(const char *name)
{
    core::SystemConfig config = core::SystemConfig::base();
    config.name = name;
    config.device.ptbEntries = 32;
    return config;
}

void
addPartitions(core::SystemConfig &config)
{
    config.device.devtlb.partitions = 8;
    config.iommu.l2tlb.partitions = 32;
    config.iommu.l3tlb.partitions = 64;
}

void
addSubEntries(core::SystemConfig &config)
{
    config.device.devtlb.subEntries = 4;
    config.iommu.l2tlb.subEntries = 4;
    config.iommu.l3tlb.subEntries = 4;
}

void
addMmuPrefetch(core::SystemConfig &config)
{
    config.device.prefetch.enabled = true;
    config.device.prefetch.kind = core::PrefetchKind::MmuDma;
    config.device.prefetch.bufferEntries = 32;
    config.device.prefetch.pagesPerPrefetch = 2;
}

struct Competitor
{
    const char *label;
    core::SystemConfig (*make)();
};

constexpr Competitor Competitors[] = {
    {"base", [] { return chassis("base"); }},
    {"part",
     [] {
         core::SystemConfig c = chassis("part");
         addPartitions(c);
         return c;
     }},
    {"subentry",
     [] {
         core::SystemConfig c = chassis("subentry");
         addSubEntries(c);
         return c;
     }},
    {"mmupf",
     [] {
         core::SystemConfig c = chassis("mmupf");
         addMmuPrefetch(c);
         return c;
     }},
    {"hypertrio",
     [] {
         core::SystemConfig c = core::SystemConfig::hypertrio();
         c.name = "hypertrio";
         return c;
     }},
    {"part+sub",
     [] {
         core::SystemConfig c = chassis("part+sub");
         addPartitions(c);
         addSubEntries(c);
         return c;
     }},
    {"sub+mmupf",
     [] {
         core::SystemConfig c = chassis("sub+mmupf");
         addSubEntries(c);
         addMmuPrefetch(c);
         return c;
     }},
    {"full-combo",
     [] {
         core::SystemConfig c = chassis("full-combo");
         addPartitions(c);
         addSubEntries(c);
         addMmuPrefetch(c);
         return c;
     }},
};

// ---- area proxy ------------------------------------------------------
//
// A relative SRAM-bit proxy derived from the config geometry alone
// (no simulation state), so it is bit-exactly reproducible and can
// sit in the committed baseline. It is a *ranking* device, not a
// synthesis result: 40-bit shared tags, 40-bit hPA payloads, 24-bit
// per-sub-entry disambiguation keys (the domain bits the shared tag
// strips), 8-bit PTag registers per partition.

double
cacheAreaBits(const cache::CacheConfig &config)
{
    constexpr double kTagBits = 40.0;
    constexpr double kValueBits = 40.0;
    constexpr double kSubKeyBits = 24.0;
    constexpr double kPtagBits = 8.0;
    double bits = static_cast<double>(config.partitions) * kPtagBits;
    if (config.subEntries <= 1) {
        bits += static_cast<double>(config.entries) *
                (kTagBits + kValueBits);
    } else {
        // One shared tag per entry; each tag carries subEntries
        // (domain key, payload) slots.
        bits += static_cast<double>(config.entries) * kTagBits;
        bits += static_cast<double>(config.entries) *
                static_cast<double>(config.subEntries) *
                (kSubKeyBits + kValueBits);
    }
    return bits;
}

double
prefetchAreaBits(const core::PrefetchConfig &config)
{
    if (!config.enabled)
        return 0.0;
    // The PB itself: full 64-bit keys + payloads.
    double bits = static_cast<double>(config.bufferEntries) *
                  (64.0 + 40.0);
    if (config.kind == core::PrefetchKind::MmuDma) {
        // 64 concurrently tracked streams x (lastPage 52, stride
        // 32, confidence 2, size 1, valid 1).
        bits += 64.0 * (52.0 + 32.0 + 2.0 + 1.0 + 1.0);
    } else {
        // SID-predictor table (256 x 16-bit next-SID) + the
        // history-length window.
        bits += 256.0 * 16.0;
        bits += static_cast<double>(config.historyLength + 1) * 16.0;
    }
    return bits;
}

double
areaKbits(const core::SystemConfig &config)
{
    double bits = cacheAreaBits(config.device.devtlb) +
                  cacheAreaBits(config.iommu.l2tlb) +
                  cacheAreaBits(config.iommu.l3tlb) +
                  prefetchAreaBits(config.device.prefetch);
    // PTB slots: request metadata, ~128 bits each.
    bits += static_cast<double>(config.device.ptbEntries) * 128.0;
    return bits / 1024.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const core::BenchOptions opts = parseArgs(argc, argv, smoke);
    bench::banner("Mechanism tournament",
                  "partitioning vs sub-entry sharing vs MMU-aware "
                  "prefetch, and their combinations",
                  opts);

    const std::vector<unsigned> tenants =
        smoke ? std::vector<unsigned>{2, 8, 32}
              : core::paperTenantSweep(
                    std::min(opts.maxTenants, 256u));

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const bench::WallTimer timer;
    bench::JsonReport report("mechanism_tournament", opts);
    bench::PointBatch batch(runner, &report);
    for (const Competitor &competitor : Competitors) {
        for (unsigned t : tenants)
            batch.add(competitor.make(), workload::Benchmark::Iperf3,
                      t);
    }
    batch.run(bench::progressSink(opts));

    // Collect in add() order; keep the last (largest-tenant) row of
    // each competitor for the summary table.
    std::vector<std::pair<std::string, std::vector<double>>> series;
    std::vector<core::RunResults> at_max;
    for (const Competitor &competitor : Competitors) {
        std::vector<double> values;
        core::RunResults last;
        for (unsigned t : tenants) {
            (void)t;
            last = batch.take();
            values.push_back(last.achievedGbps);
        }
        series.emplace_back(competitor.label, std::move(values));
        at_max.push_back(std::move(last));
    }
    core::printBandwidthTable(
        std::cout,
        "mechanism bake-off (iperf3 RR1, PTB=32 chassis)", tenants,
        series);

    // Cost/benefit summary at the hyper-tenant end of the sweep.
    std::printf("\nsummary at %u tenants (area proxy: SRAM-bit "
                "model, see header)\n",
                tenants.back());
    std::printf("%-16s %10s %8s %8s %8s %10s\n", "config", "Gb/s",
                "util", "DevTLB", "PB", "area Kb");
    for (size_t i = 0; i < std::size(Competitors); ++i) {
        const core::RunResults &r = at_max[i];
        const double area = areaKbits(Competitors[i].make());
        std::printf("%-16s %10.2f %7.1f%% %7.1f%% %7.1f%% %10.1f\n",
                    Competitors[i].label, r.achievedGbps,
                    r.utilization * 100.0, r.devtlbHitRate * 100.0,
                    r.pbHitRate * 100.0, area);
        report.addScalar(std::string("area_kbits_") +
                             Competitors[i].label,
                         area);
    }

    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
