/**
 * @file
 * Extension experiment: small-packet (key-value-store) traffic.
 *
 * The paper motivates the PTB by noting that at 200 Gb/s a 1500 B
 * packet leaves only ~74 device cycles for all translations — "even
 * less for real-world applications" like key-value stores where
 * most keys are under 60 B and values under 1000 B. This bench
 * replays an iperf3-like tenant pattern with a growing fraction of
 * small packets and reports how the translation subsystem copes as
 * the per-packet time budget shrinks.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Extension: key-value-store packets",
                  "bandwidth under shrinking per-packet time "
                  "budgets",
                  opts);

    const bench::WallTimer timer;
    bench::JsonReport report("ext_kvstore", opts);
    const unsigned tenants = std::min(opts.maxTenants, 256u);
    const auto profile =
        workload::benchmarkProfile(workload::Benchmark::Iperf3);

    std::printf("%u tenants, RR1; small packets are 256 B on the "
                "wire (vs 1542 B full)\n\n",
                tenants);
    std::printf("%14s %12s %14s %14s %12s\n", "small-pkt mix",
                "config", "Gb/s", "packets/us", "drops(%)");
    for (double mix : {0.0, 0.5, 0.9}) {
        workload::TenantPattern pattern = profile.pattern;
        pattern.smallPacketBytes = 256;
        pattern.smallPacketProb = mix;
        const auto packets = static_cast<uint64_t>(
            22000 * opts.scale);
        workload::scaleInitPhase(pattern, packets);
        workload::TenantLogGenerator gen(pattern, opts.seed);
        std::vector<trace::TenantLog> logs;
        for (unsigned t = 0; t < tenants; ++t)
            logs.push_back(gen.generate(t, packets));
        const auto tr = trace::constructTrace(
            logs, trace::parseInterleaving("RR1"));

        for (bool hypertrio : {false, true}) {
            core::SystemConfig config =
                hypertrio ? core::SystemConfig::hypertrio()
                          : core::SystemConfig::base();
            config.seed = opts.seed;
            core::System system(config);
            const core::RunResults r = system.run(tr);
            const double pkt_rate =
                r.elapsed == 0
                    ? 0.0
                    : static_cast<double>(r.packetsProcessed) /
                          (ticksToNs(r.elapsed) / 1000.0);
            const double drop_pct =
                r.packetsProcessed + r.packetsDropped == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(r.packetsDropped) /
                          static_cast<double>(r.packetsDropped +
                                              r.packetsProcessed);
            std::printf("%13.0f%% %12s %14.1f %14.2f %12.1f\n",
                        mix * 100.0, config.name.c_str(),
                        r.achievedGbps, pkt_rate, drop_pct);
            report.addPoint(
                config.name + "@mix" +
                    std::to_string(
                        static_cast<int>(mix * 100.0)),
                "kvstore-iperf3", tenants, "RR1", r,
                report.enabled() ? bench::captureStatsJson(system)
                                 : std::string());
        }
    }

    std::printf(
        "\nSmall packets shrink the arrival interval (256 B = "
        "10.2 ns at 200 Gb/s vs 61.7 ns full-size): the same "
        "translation latency must now hide behind far fewer "
        "nanoseconds, so the packet *rate* a design sustains — not "
        "its Gb/s — is the telling column.\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
