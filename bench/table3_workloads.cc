/**
 * @file
 * Table III: maximum, minimum, and total translation-request counts
 * recorded per benchmark for the 1024-tenant hyper-trace. Run with
 * --full for paper-sized logs (the default quick mode scales the
 * per-tenant counts down but preserves the min/max structure).
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Table III",
                  "translation requests per benchmark", opts);

    const bench::WallTimer timer;
    bench::JsonReport report("table3_workloads", opts);
    const unsigned tenants = std::min(opts.maxTenants, 1024u);

    std::printf("%-14s %14s %14s %16s\n", "benchmark",
                "max/tenant", "min/tenant",
                ("total/" + std::to_string(tenants) + "t").c_str());
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        auto logs = workload::generateLogs(bench, tenants,
                                           opts.seed, opts.scale);
        uint64_t min_tr = UINT64_MAX;
        uint64_t max_tr = 0;
        for (const auto &log : logs) {
            min_tr = std::min(min_tr, log.translations());
            max_tr = std::max(max_tr, log.translations());
        }
        const auto trace = trace::constructTrace(
            logs, trace::parseInterleaving("RR1"));
        std::printf("%-14s %14llu %14llu %16llu\n",
                    workload::benchmarkName(bench),
                    (unsigned long long)max_tr,
                    (unsigned long long)min_tr,
                    (unsigned long long)trace.translations());
        const std::string id = workload::benchmarkName(bench);
        report.addScalar(id + ".max_per_tenant",
                         static_cast<double>(max_tr));
        report.addScalar(id + ".min_per_tenant",
                         static_cast<double>(min_tr));
        report.addScalar(id + ".total",
                         static_cast<double>(trace.translations()));
    }

    std::printf("\npaper (1024 tenants): iperf3 108,510 / 68,079 / "
                "69,712,894; mediastream 73,657 / 5,520 / "
                "5,652,477; websearch 108,513 / 43,362 / "
                "44,402,679\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
