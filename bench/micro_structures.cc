/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator structures:
 * cache lookup/insert, replacement policies, event-queue churn,
 * page-table translation, trace construction, and predictor
 * training. Useful for keeping the simulator itself fast enough for
 * paper-scale (1024-tenant) runs.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "hypersio/hypersio.hh"

using namespace hypersio;

namespace
{

void
BM_CacheLookupHit(benchmark::State &state)
{
    cache::SetAssocCache<uint64_t> tlb(
        {64, 8, 1, cache::ReplPolicyKind::LFU, 1});
    for (uint64_t i = 0; i < 64; ++i)
        tlb.insert(i, i, i);
    uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(key, key));
        key = (key + 1) % 64;
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    cache::SetAssocCache<uint64_t> tlb(
        {64, 8, 1, cache::ReplPolicyKind::LFU, 1});
    uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.insert(key, key, key));
        ++key;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_CachePartitionedLookup(benchmark::State &state)
{
    cache::SetAssocCache<uint64_t> tlb(
        {64, 8, static_cast<size_t>(state.range(0)),
         cache::ReplPolicyKind::LFU, 1});
    for (uint64_t i = 0; i < 64; ++i)
        tlb.insert(i, i, i, static_cast<uint32_t>(i));
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(i % 64, i % 64, static_cast<uint32_t>(i % 64)));
        ++i;
    }
}
BENCHMARK(BM_CachePartitionedLookup)->Arg(1)->Arg(8);

void
BM_EventQueueChurn(benchmark::State &state)
{
    sim::EventQueue queue;
    Tick when = 0;
    for (auto _ : state) {
        queue.schedule(when + 10, [] {});
        queue.step();
        ++when;
    }
}
BENCHMARK(BM_EventQueueChurn);

void
BM_PageTableTranslate(benchmark::State &state)
{
    mem::PageTable table(1, 42);
    for (unsigned i = 0; i < 32; ++i)
        table.map(0xbbe00000 + i * mem::PageSize2M,
                  mem::PageSize::Size2M);
    uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.translate(
            0xbbe00000 + (i % 32) * mem::PageSize2M + (i % 4096)));
        ++i;
    }
}
BENCHMARK(BM_PageTableTranslate);

void
BM_SidPredictorTrain(benchmark::State &state)
{
    core::SidPredictor predictor(48);
    trace::SourceId sid = 0;
    for (auto _ : state) {
        predictor.train(sid);
        sid = (sid + 1) % 1024;
    }
}
BENCHMARK(BM_SidPredictorTrain);

void
BM_TenantLogGeneration(benchmark::State &state)
{
    const auto profile =
        workload::benchmarkProfile(workload::Benchmark::Iperf3);
    workload::TenantLogGenerator gen(profile.pattern, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gen.generate(0, static_cast<uint64_t>(state.range(0))));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TenantLogGeneration)->Arg(1000)->Arg(10000);

void
BM_TraceConstruction(benchmark::State &state)
{
    auto logs = workload::generateLogs(
        workload::Benchmark::Iperf3,
        static_cast<unsigned>(state.range(0)), 42, 0.01);
    const auto il = trace::parseInterleaving("RR1");
    for (auto _ : state) {
        benchmark::DoNotOptimize(trace::constructTrace(logs, il));
    }
}
BENCHMARK(BM_TraceConstruction)->Arg(16)->Arg(64);

void
BM_EndToEndSmallRun(benchmark::State &state)
{
    auto logs = workload::generateLogs(workload::Benchmark::Iperf3,
                                       8, 42, 0.01);
    const auto tr =
        trace::constructTrace(logs, trace::parseInterleaving("RR1"));
    for (auto _ : state) {
        core::System system(core::SystemConfig::hypertrio());
        benchmark::DoNotOptimize(system.run(tr));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<int64_t>(tr.packets.size()));
}
BENCHMARK(BM_EndToEndSmallRun);

} // namespace

/**
 * Custom main: the repo-wide `--json <file>` flag maps onto
 * google-benchmark's native JSON reporter so all bench binaries
 * share one machine-readable-output switch.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--json" || arg == "--stats-json") &&
            i + 1 < argc) {
            args.push_back(std::string("--benchmark_out=") +
                           argv[++i]);
            args.push_back("--benchmark_out_format=json");
        } else {
            args.push_back(arg);
        }
    }
    std::vector<char *> cargv;
    cargv.reserve(args.size());
    for (auto &a : args)
        cargv.push_back(a.data());
    int cargc = static_cast<int>(cargv.size());
    benchmark::Initialize(&cargc, cargv.data());
    if (benchmark::ReportUnrecognizedArguments(cargc,
                                               cargv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
