/**
 * @file
 * Ablations of design choices the paper fixes or leaves open:
 *
 *  1. Paging depth — 4-level (24-access full walk, Table II) versus
 *     5-level paging / 5-level EPT (35 accesses), the scaling the
 *     paper cites from the Intel white papers.
 *  2. Partition granularity — the paper assigns one DevTLB row per
 *     partition and notes "exploring the optimal number of
 *     partitions and the number of devices per partition is left
 *     outside the scope of this work"; this sweep explores it.
 *  3. LFU counter width — the 4-bit choice (halve-on-saturate)
 *     versus narrower and wider counters.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Ablations",
                  "paging depth, partition granularity, LFU width",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(
        std::min(opts.maxTenants, 256u));

    constexpr unsigned kLevelSweep[] = {4, 5};
    constexpr size_t kPartitionSweep[] = {1, 2, 4, 8};
    constexpr unsigned kLfuBitsSweep[] = {2, 4, 8};

    const bench::WallTimer timer;
    bench::JsonReport report("ablation_design", opts);
    bench::PointBatch batch(runner, &report);
    for (unsigned levels : kLevelSweep) {
        for (unsigned t : tenants) {
            core::SystemConfig config =
                bench::partitionedPtbConfig(32);
            config.iommu.pagingLevels = levels;
            batch.add(std::move(config), workload::Benchmark::Iperf3,
                      t);
        }
    }
    for (size_t partitions : kPartitionSweep) {
        for (unsigned t : tenants) {
            core::SystemConfig config = core::SystemConfig::base();
            config.device.ptbEntries = 8;
            config.device.devtlb.partitions = partitions;
            batch.add(std::move(config), workload::Benchmark::Iperf3,
                      t);
        }
    }
    for (unsigned bits : kLfuBitsSweep) {
        for (unsigned t : tenants) {
            core::SystemConfig config = core::SystemConfig::base();
            config.device.devtlb.lfuBits = bits;
            batch.add(std::move(config), workload::Benchmark::Iperf3,
                      t);
        }
    }
    batch.run(bench::progressSink(opts));

    // ---- 1. paging depth -------------------------------------------
    {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned levels : kLevelSweep) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(std::to_string(levels) + "-level",
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            "paging depth (partitioned, PTB=32, no prefetch, "
            "iperf3 RR1)",
            tenants, series);
    }

    // ---- 2. partition granularity -----------------------------------
    {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (size_t partitions : kPartitionSweep) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(
                std::to_string(partitions) + "-part",
                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            "DevTLB partition count (PTB=8, iperf3 RR1) — more "
            "partitions isolate more tenant groups but shrink each "
            "group's reach",
            tenants, series);
    }

    // ---- 3. LFU counter width ---------------------------------------
    {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned bits : kLfuBitsSweep) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(std::to_string(bits) + "-bit",
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout, "LFU counter width (Base, iperf3 RR1)",
            tenants, series);
    }
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
