/**
 * @file
 * Ablations of design choices the paper fixes or leaves open:
 *
 *  1. Paging depth — 4-level (24-access full walk, Table II) versus
 *     5-level paging / 5-level EPT (35 accesses), the scaling the
 *     paper cites from the Intel white papers.
 *  2. Partition granularity — the paper assigns one DevTLB row per
 *     partition and notes "exploring the optimal number of
 *     partitions and the number of devices per partition is left
 *     outside the scope of this work"; this sweep explores it.
 *  3. LFU counter width — the 4-bit choice (halve-on-saturate)
 *     versus narrower and wider counters.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Ablations",
                  "paging depth, partition granularity, LFU width",
                  opts);

    core::ExperimentRunner runner(opts.scale, opts.seed);
    const auto tenants = core::paperTenantSweep(
        std::min(opts.maxTenants, 256u));

    // ---- 1. paging depth -------------------------------------------
    {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned levels : {4u, 5u}) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                core::SystemConfig config =
                    bench::partitionedPtbConfig(32);
                config.iommu.pagingLevels = levels;
                values.push_back(
                    bench::runPoint(runner, config,
                                    workload::Benchmark::Iperf3, t)
                        .achievedGbps);
            }
            series.emplace_back(std::to_string(levels) + "-level",
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            "paging depth (partitioned, PTB=32, no prefetch, "
            "iperf3 RR1)",
            tenants, series);
    }

    // ---- 2. partition granularity -----------------------------------
    {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (size_t partitions : {1u, 2u, 4u, 8u}) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                core::SystemConfig config = core::SystemConfig::base();
                config.device.ptbEntries = 8;
                config.device.devtlb.partitions = partitions;
                values.push_back(
                    bench::runPoint(runner, config,
                                    workload::Benchmark::Iperf3, t)
                        .achievedGbps);
            }
            series.emplace_back(
                std::to_string(partitions) + "-part",
                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            "DevTLB partition count (PTB=8, iperf3 RR1) — more "
            "partitions isolate more tenant groups but shrink each "
            "group's reach",
            tenants, series);
    }

    // ---- 3. LFU counter width ---------------------------------------
    {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned bits : {2u, 4u, 8u}) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                core::SystemConfig config = core::SystemConfig::base();
                config.device.devtlb.lfuBits = bits;
                values.push_back(
                    bench::runPoint(runner, config,
                                    workload::Benchmark::Iperf3, t)
                        .achievedGbps);
            }
            series.emplace_back(std::to_string(bits) + "-bit",
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout, "LFU counter width (Base, iperf3 RR1)",
            tenants, series);
    }
    return 0;
}
