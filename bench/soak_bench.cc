/**
 * @file
 * Long-haul soak harness: sustained tenant churn punctuated by
 * adversarial invalidate-storm and remap-churn episodes
 * (workload::SoakStream), sharded across independent Systems, with
 * periodic interval-telemetry snapshots streamed to disk as
 * "hypersio-soak-1" JSON lines (stats::Snapshotter).
 *
 * Snapshots trigger on simulated progress (every --snapshot-every
 * completed packets per shard), never on wall time, so every
 * deterministic field of the stream is a pure function of the
 * config; wall clock and VmRSS/VmHWM ride along under each line's
 * "wall" member. scripts/soak_report.py turns the stream into
 * per-interval throughput/hit-rate/RSS trajectories and fails on
 * drift or leak; scripts/check_repo.sh gate 10 runs the --smoke
 * configuration against the committed BENCH_soak.json baseline.
 *
 * Any in-run abort — a shadow-oracle violation, an invariant
 * assertion — prints a single-line HYPERSIO_SOAK_REPRO context
 * (seed, shard, interval) before the panic message, the soak
 * equivalent of the fuzz harness's HYPERSIO_FUZZ_SEED line.
 *
 *   soak_bench --minutes 10 --snapshots soak.jsonl   # long haul
 *   soak_bench --smoke --snapshots smoke.jsonl       # ctest smoke
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/multi_system.hh"
#include "oracle/fault_injection.hh"
#include "stats/snapshot.hh"
#include "util/str.hh"
#include "workload/soak.hh"

using namespace hypersio;

namespace
{

/**
 * Nominal sizing constant for --minutes: virtual tenants simulated
 * per wall minute at scale 1 on the reference dev machine. The
 * resulting run length is approximate by design; the population it
 * derives is what keeps the workload deterministic.
 */
constexpr double TenantsPerMinute = 100000.0;

struct Options
{
    uint64_t population = 20000; ///< virtual tenants over the run
    double minutes = 0.0;        ///< 0 = take --tenants as given
    unsigned active = 512;       ///< concurrently attached slots
    unsigned shards = 4;
    unsigned jobs = 4;
    uint64_t seed = 42;
    workload::Benchmark bench = workload::Benchmark::Iperf3;
    double scale = 1.0; ///< scales per-tenant packet budgets
    uint64_t snapshotEvery = 20000; ///< packets per interval/shard
    uint64_t stormPeriod = 8192;    ///< churn packets per episode
    uint64_t stormPackets = 512;
    unsigned stormTenants = 8;
    uint64_t rssBudgetMb = 0; ///< 0 = report only, no gate
    std::string snapshotPath;
    std::string jsonPath;
    bool smoke = false;
    bool injectFault = false;
};

constexpr const char *UsageText =
    "options:\n"
    "  --minutes <f>        approximate run length; sizes the\n"
    "                       tenant population deterministically\n"
    "  --tenants <n>        virtual-tenant population "
    "(default 20000)\n"
    "  --active <n>         concurrently attached SID slots, "
    "split across shards (default 512)\n"
    "  --shards <n>         independent system shards "
    "(default 4)\n"
    "  --jobs, -j <n>       worker threads (results identical "
    "for any value; default 4)\n"
    "  --seed <n>           workload seed (default 42)\n"
    "  --bench <name>       iperf3 | mediastream | websearch\n"
    "  --scale <f>          per-tenant packet-budget scale "
    "(default 1.0)\n"
    "  --snapshot-every <n> packets per telemetry interval, per "
    "shard (default 20000)\n"
    "  --snapshots <file>   stream hypersio-soak-1 JSON lines "
    "here\n"
    "  --storm-period <n>   churn packets between adversarial "
    "episodes (default 8192; 0 disables)\n"
    "  --storm-packets <n>  packets per episode (default 512)\n"
    "  --storm-tenants <n>  tenants per episode (default 8)\n"
    "  --smoke              quick deterministic run (2000 "
    "tenants, 128 slots, 2 shards)\n"
    "  --rss-budget-mb <n>  fail if peak RSS (VmHWM) exceeds "
    "this many MiB\n"
    "  --inject-fault       plant the DevTLB PTag off-by-one "
    "(checked builds; must abort with a repro line)\n"
    "  --json <file>        write the hypersio-bench-1 report";

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    bool tenants_set = false, active_set = false;
    bool shards_set = false, jobs_set = false;
    bool every_set = false, period_set = false;
    bool spackets_set = false, stenants_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        auto next_u64 = [&](const char *flag) {
            uint64_t value = 0;
            if (!parseU64(next_value(flag), value) || value == 0)
                fatal("%s needs a positive integer", flag);
            return value;
        };
        auto next_unsigned = [&](const char *flag) {
            const uint64_t value = next_u64(flag);
            if (value > std::numeric_limits<unsigned>::max()) {
                fatal("%s value %" PRIu64 " does not fit in an "
                      "unsigned count (max %u)",
                      flag, value,
                      std::numeric_limits<unsigned>::max());
            }
            return static_cast<unsigned>(value);
        };
        auto next_double = [&](const char *flag) {
            double value = 0.0;
            if (!parseDouble(next_value(flag), value) ||
                value <= 0.0)
                fatal("%s needs a positive number", flag);
            return value;
        };
        if (arg == "--minutes") {
            opts.minutes = next_double("--minutes");
        } else if (arg == "--tenants") {
            opts.population = next_u64("--tenants");
            tenants_set = true;
        } else if (arg == "--active") {
            opts.active = next_unsigned("--active");
            active_set = true;
        } else if (arg == "--shards") {
            opts.shards = next_unsigned("--shards");
            shards_set = true;
        } else if (arg == "--jobs" || arg == "-j") {
            opts.jobs = next_unsigned(arg.c_str());
            jobs_set = true;
        } else if (arg == "--seed") {
            uint64_t value = 0;
            if (!parseU64(next_value("--seed"), value))
                fatal("--seed needs an integer");
            opts.seed = value;
        } else if (arg == "--bench") {
            opts.bench =
                workload::parseBenchmark(next_value("--bench"));
        } else if (arg == "--scale") {
            opts.scale = next_double("--scale");
        } else if (arg == "--snapshot-every") {
            opts.snapshotEvery = next_u64("--snapshot-every");
            every_set = true;
        } else if (arg == "--snapshots") {
            opts.snapshotPath = next_value("--snapshots");
        } else if (arg == "--storm-period") {
            // 0 is legal here: storms off.
            uint64_t value = 0;
            if (!parseU64(next_value("--storm-period"), value))
                fatal("--storm-period needs an integer");
            opts.stormPeriod = value;
            period_set = true;
        } else if (arg == "--storm-packets") {
            opts.stormPackets = next_u64("--storm-packets");
            spackets_set = true;
        } else if (arg == "--storm-tenants") {
            opts.stormTenants = next_unsigned("--storm-tenants");
            stenants_set = true;
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--rss-budget-mb") {
            opts.rssBudgetMb = next_u64("--rss-budget-mb");
        } else if (arg == "--inject-fault") {
            opts.injectFault = true;
        } else if (arg == "--json") {
            opts.jsonPath = next_value("--json");
        } else if (arg == "--help" || arg == "-h") {
            std::puts(UsageText);
            std::exit(0);
        } else {
            std::fputs(UsageText, stderr);
            std::fputc('\n', stderr);
            fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    if (opts.smoke) {
        if (!tenants_set)
            opts.population = 2000;
        if (!active_set)
            opts.active = 128;
        if (!shards_set)
            opts.shards = 2;
        if (!jobs_set)
            opts.jobs = 2;
        if (!every_set)
            opts.snapshotEvery = 4000;
        if (!period_set)
            opts.stormPeriod = 3000;
        if (!spackets_set)
            opts.stormPackets = 200;
        if (!stenants_set)
            opts.stormTenants = 4;
    }
    if (opts.minutes > 0.0 && !tenants_set) {
        const double sized =
            opts.minutes * TenantsPerMinute / opts.scale;
        opts.population = static_cast<uint64_t>(
            sized < 1.0 ? 1.0 : sized);
    }
    if (opts.active < opts.shards)
        fatal("--active must be >= --shards (every shard needs a "
              "slot)");
    return opts;
}

/** Peak resident set (VmHWM) in KiB; false = unavailable. */
bool
peakRssKib(uint64_t &out)
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return false;
    std::ostringstream text;
    text << status.rdbuf();
    return parseVmHwmKib(text.str(), out);
}

/** Shard `s`'s soak workload: its slice of the population. */
workload::SoakConfig
shardSoak(const Options &opts, unsigned shard)
{
    workload::SoakConfig cfg;
    cfg.churn.bench = opts.bench;
    const uint64_t base = opts.population / opts.shards;
    const uint64_t extra = shard < (opts.population % opts.shards);
    cfg.churn.population = static_cast<unsigned>(base + extra);
    cfg.churn.slots = opts.active / opts.shards;
    cfg.churn.seed = hashCombine(opts.seed, 0x50acULL + shard);
    if (opts.smoke) {
        cfg.churn.minBudget = 24;
        cfg.churn.maxBudget = 64;
        cfg.churn.tailMin = 256;
        cfg.churn.tailMax = 512;
    }
    auto scaled = [&](uint64_t v) {
        const auto s = static_cast<uint64_t>(
            static_cast<double>(v) * opts.scale);
        return s ? s : uint64_t{1};
    };
    cfg.churn.minBudget = scaled(cfg.churn.minBudget);
    cfg.churn.maxBudget = scaled(cfg.churn.maxBudget);
    cfg.churn.tailMin = scaled(cfg.churn.tailMin);
    cfg.churn.tailMax = scaled(cfg.churn.tailMax);
    cfg.stormPeriod = opts.stormPeriod;
    cfg.stormPackets = opts.stormPackets;
    cfg.stormTenants = opts.stormTenants;
    return cfg;
}

/** The single-line abort context (seed first, like the fuzzer). */
std::string
reproLine(const Options &opts, unsigned shard,
          const std::string &interval)
{
    return strprintf(
        "HYPERSIO_SOAK_REPRO: seed=%llu shard=%u interval=%s "
        "bench=%s tenants=%llu active=%u shards=%u scale=%g "
        "storm_period=%llu storm_packets=%llu storm_tenants=%u",
        (unsigned long long)opts.seed, shard, interval.c_str(),
        workload::benchmarkName(opts.bench),
        (unsigned long long)opts.population, opts.active,
        opts.shards, opts.scale,
        (unsigned long long)opts.stormPeriod,
        (unsigned long long)opts.stormPackets, opts.stormTenants);
}

/** Per-shard telemetry state (only its own worker thread touches
 *  the snapshotter/timer; the output stream is shared + locked). */
struct ShardTelemetry
{
    std::unique_ptr<stats::Snapshotter> snapper;
    bench::WallTimer timer;
    uint64_t lines = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    bench::WallTimer timer;

    if (opts.injectFault) {
#ifdef HYPERSIO_CHECKED
        oracle::faultInjection().devtlbPtagOffByOne = true;
#else
        fatal("--inject-fault needs a HYPERSIO_CHECKED build (the "
              "injection sites are compiled away otherwise)");
#endif
    }

    core::BenchOptions report_opts;
    report_opts.scale = opts.scale;
    report_opts.maxTenants = static_cast<unsigned>(opts.population);
    report_opts.seed = opts.seed;
    report_opts.jobs = opts.jobs;
    report_opts.jsonPath = opts.jsonPath;
    bench::JsonReport report("soak_bench", report_opts);

    std::printf("=== soak_bench: long-haul churn + adversarial "
                "episodes ===\n");
    std::printf("(%" PRIu64 " virtual tenants over %u active slots, "
                "%u shards, %s, seed %" PRIu64 ";\n storms every "
                "%" PRIu64 " packets x %" PRIu64 " packets x %u "
                "tenants; snapshots every %" PRIu64 " packets)\n\n",
                opts.population, opts.active, opts.shards,
                workload::benchmarkName(opts.bench), opts.seed,
                opts.stormPeriod, opts.stormPackets,
                opts.stormTenants, opts.snapshotEvery);

    PanicContext::set(reproLine(opts, 0, "setup"));

    core::SystemConfig config = core::SystemConfig::hypertrio();
    core::ShardedMultiSystem sharded(config, opts.shards, opts.jobs);

    std::ofstream snapshot_file;
    std::mutex snapshot_mutex;
    const bool snapshotting = !opts.snapshotPath.empty();
    if (snapshotting) {
        snapshot_file.open(opts.snapshotPath, std::ios::trunc);
        if (!snapshot_file)
            fatal("cannot open '%s' for writing",
                  opts.snapshotPath.c_str());
    }

    std::vector<ShardTelemetry> telemetry(opts.shards);
    std::vector<workload::SoakStream *> soaks(opts.shards);

    auto make_stream = [&](unsigned shard) {
        auto stream = std::make_unique<workload::SoakStream>(
            shardSoak(opts, shard));
        soaks[shard] = stream.get();
        return stream;
    };
    auto make_options = [&](unsigned shard) {
        core::StreamRunOptions run_opts;
        run_opts.onRunStart = [&, shard](const core::System &) {
            // Worker-thread setup: from here on, any panic on this
            // shard's thread carries the repro line.
            PanicContext::set(reproLine(opts, shard, "0"));
            telemetry[shard].timer = bench::WallTimer();
        };
        if (snapshotting) {
            run_opts.snapshotEveryPackets = opts.snapshotEvery;
            run_opts.onSnapshot = [&, shard](
                                      const core::System &system,
                                      uint64_t) {
                ShardTelemetry &tel = telemetry[shard];
                if (!tel.snapper) {
                    tel.snapper =
                        std::make_unique<stats::Snapshotter>(
                            system.statsRoot());
                }
                stats::Snapshot snap = tel.snapper->capture(
                    system.eventQueue().now(),
                    tel.timer.seconds());
                stats::Snapshotter::sampleProcessRss(snap);
                const std::string line = stats::snapshotToJsonLine(
                    snap, shard, opts.seed);
                {
                    const std::lock_guard<std::mutex> lock(
                        snapshot_mutex);
                    snapshot_file << line << '\n';
                    snapshot_file.flush();
                }
                ++tel.lines;
                PanicContext::set(reproLine(
                    opts, shard,
                    std::to_string(snap.interval + 1)));
            };
        }
        return run_opts;
    };

    const core::ShardedRunResults results =
        sharded.run(make_stream, make_options);
    PanicContext::set(reproLine(opts, 0, "end"));

    uint64_t attaches = 0;
    uint64_t episodes = 0;
    uint64_t snapshots = 0;
    for (unsigned s = 0; s < opts.shards; ++s) {
        attaches += soaks[s]->attaches();
        episodes += soaks[s]->episodes();
        snapshots += telemetry[s].lines;
    }

    std::printf("%-26s %" PRIu64 "\n", "packets processed",
                results.packetsProcessed);
    std::printf("%-26s %" PRIu64 "\n", "packets dropped",
                results.packetsDropped);
    std::printf("%-26s %" PRIu64 "\n", "translations",
                results.translations);
    std::printf("%-26s %" PRIu64 "\n", "tenants attached", attaches);
    std::printf("%-26s %" PRIu64 "\n", "tenants retired",
                results.tenantsRetired);
    std::printf("%-26s %" PRIu64 "\n", "storm episodes", episodes);
    std::printf("%-26s %" PRIu64 "\n", "snapshots written",
                snapshots);
    std::printf("%-26s %" PRIu64 "\n", "max shard elapsed (ticks)",
                results.maxElapsed);
    std::printf("%-26s %#014" PRIx64 "\n", "retire-merge checksum",
                results.mergeChecksum);

    // Every tenant — churn population and every storm episode's —
    // must have been attached and fully retired, and every shard
    // must end with zero live page tables: the soak run's own
    // no-leak invariant at the functional level.
    const uint64_t expected =
        opts.population +
        episodes * static_cast<uint64_t>(opts.stormTenants);
    HYPERSIO_ASSERT(attaches == expected,
                    "attached %" PRIu64 " of %" PRIu64 " tenants",
                    attaches, expected);
    HYPERSIO_ASSERT(results.tenantsRetired == expected,
                    "retired %" PRIu64 " of %" PRIu64 " tenants",
                    results.tenantsRetired, expected);
    for (unsigned s = 0; s < opts.shards; ++s) {
        HYPERSIO_ASSERT(sharded.shard(s).tables().size() == 0,
                        "shard %u ended with %zu live page tables",
                        s, sharded.shard(s).tables().size());
    }
    if (snapshotting) {
        HYPERSIO_ASSERT(snapshots >= 3,
                        "only %" PRIu64 " snapshots written — run "
                        "too short for a trajectory (lower "
                        "--snapshot-every)",
                        snapshots);
    }

    uint64_t rss_kib = 0;
    const bool rss_known = peakRssKib(rss_kib);
    if (rss_known) {
        std::printf("%-26s %.1f MiB%s\n", "peak RSS (VmHWM)",
                    static_cast<double>(rss_kib) / 1024.0,
                    opts.rssBudgetMb
                        ? (" (budget " +
                           std::to_string(opts.rssBudgetMb) +
                           " MiB)").c_str()
                        : "");
    } else {
        std::printf("%-26s %s\n", "peak RSS (VmHWM)",
                    "unavailable");
    }
    if (opts.rssBudgetMb && !rss_known) {
        fatal("--rss-budget-mb %" PRIu64 " requested but VmHWM is "
              "unavailable in /proc/self/status — cannot verify the "
              "RSS budget",
              opts.rssBudgetMb);
    }
    if (opts.rssBudgetMb && rss_kib > opts.rssBudgetMb * 1024) {
        fatal("peak RSS %.1f MiB exceeds the %" PRIu64
              " MiB budget — O(active) state is broken",
              static_cast<double>(rss_kib) / 1024.0,
              opts.rssBudgetMb);
    }

    if (opts.injectFault) {
        // A planted fault that the run survives means the shadow
        // oracle missed it — that is itself a failure.
        fatal("--inject-fault run completed without the oracle "
              "catching the planted PTag corruption");
    }

    if (report.enabled()) {
        for (unsigned s = 0; s < opts.shards; ++s) {
            report.addPoint(
                "shard" + std::to_string(s),
                workload::benchmarkName(opts.bench),
                static_cast<unsigned>(soaks[s]->numTenants()),
                "SOAK", results.perShard[s]);
        }
        // Deterministic scalars only (no RSS, no wall clock): gate
        // 10 diffs them at zero drift against BENCH_soak.json.
        report.addScalar("packets_processed",
                         static_cast<double>(
                             results.packetsProcessed));
        report.addScalar("packets_dropped",
                         static_cast<double>(results.packetsDropped));
        report.addScalar("translations",
                         static_cast<double>(results.translations));
        report.addScalar("tenants_attached",
                         static_cast<double>(attaches));
        report.addScalar("tenants_retired",
                         static_cast<double>(results.tenantsRetired));
        report.addScalar("storm_episodes",
                         static_cast<double>(episodes));
        report.addScalar("snapshots_written",
                         static_cast<double>(snapshots));
        report.addScalar("retire_merge_checksum",
                         static_cast<double>(results.mergeChecksum));
        report.write(timer.seconds());
    }

    std::fprintf(stderr, "[wall] %.2f s (--jobs %u)\n",
                 timer.seconds(), opts.jobs);
    return 0;
}
