/**
 * @file
 * Fig. 9 analogue: modeled I/O bandwidth depending on the device
 * translation-cache configuration and the number of concurrent
 * connections, on a fully loaded 200 Gb/s link (Base design).
 *
 * The paper shows the simulated counterpart of the Fig. 5 hardware
 * study: with a 64-entry DevTLB the aggregate bandwidth is full for
 * a handful of tenants and collapses as the shared translation
 * structures thrash.
 */

#include "bench_common.hh"

using namespace hypersio;

namespace
{

struct Shape
{
    const char *label;
    size_t entries;
    size_t ways;
};

constexpr Shape kShapes[] = {{"64e/8w", 64, 8},
                             {"64e/fa", 64, 64},
                             {"32e/8w", 32, 8}};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 9",
                  "modeled bandwidth vs DevTLB config and "
                  "connection count (200 Gb/s, Base)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(
        std::min(opts.maxTenants, 256u));

    const bench::WallTimer timer;
    bench::JsonReport report("fig09_devtlb_config", opts);
    bench::PointBatch batch(runner, &report);
    for (const Shape &shape : kShapes) {
        for (unsigned t : tenants) {
            core::SystemConfig config = core::SystemConfig::base();
            config.name = shape.label;
            config.device.devtlb.entries = shape.entries;
            config.device.devtlb.ways = shape.ways;
            batch.add(std::move(config), workload::Benchmark::Iperf3,
                      t);
        }
    }
    batch.run(bench::progressSink(opts));

    std::vector<std::pair<std::string, std::vector<double>>> series;
    for (const Shape &shape : kShapes) {
        std::vector<double> values;
        for (unsigned t : tenants) {
            (void)t;
            values.push_back(batch.take().achievedGbps);
        }
        series.emplace_back(shape.label, std::move(values));
    }

    core::printBandwidthTable(
        std::cout, "aggregate bandwidth (Gb/s), iperf3 RR1",
        tenants, series);
    std::printf("\npaper: full link for few connections; for an "
                "8-way DevTLB more than ~4 concurrent connections "
                "start evicting each other until the translation "
                "subsystem throttles the link\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
