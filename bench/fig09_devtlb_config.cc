/**
 * @file
 * Fig. 9 analogue: modeled I/O bandwidth depending on the device
 * translation-cache configuration and the number of concurrent
 * connections, on a fully loaded 200 Gb/s link (Base design).
 *
 * The paper shows the simulated counterpart of the Fig. 5 hardware
 * study: with a 64-entry DevTLB the aggregate bandwidth is full for
 * a handful of tenants and collapses as the shared translation
 * structures thrash.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 9",
                  "modeled bandwidth vs DevTLB config and "
                  "connection count (200 Gb/s, Base)",
                  opts);

    core::ExperimentRunner runner(opts.scale, opts.seed);
    const auto tenants = core::paperTenantSweep(
        std::min(opts.maxTenants, 256u));

    std::vector<std::pair<std::string, std::vector<double>>> series;
    struct Shape
    {
        const char *label;
        size_t entries;
        size_t ways;
    };
    for (const Shape &shape : {Shape{"64e/8w", 64, 8},
                               Shape{"64e/fa", 64, 64},
                               Shape{"32e/8w", 32, 8}}) {
        std::vector<double> values;
        for (unsigned t : tenants) {
            core::SystemConfig config = core::SystemConfig::base();
            config.name = shape.label;
            config.device.devtlb.entries = shape.entries;
            config.device.devtlb.ways = shape.ways;
            values.push_back(
                bench::runPoint(runner, config,
                                workload::Benchmark::Iperf3, t)
                    .achievedGbps);
        }
        series.emplace_back(shape.label, std::move(values));
    }

    core::printBandwidthTable(
        std::cout, "aggregate bandwidth (Gb/s), iperf3 RR1",
        tenants, series);
    std::printf("\npaper: full link for few connections; for an "
                "8-way DevTLB more than ~4 concurrent connections "
                "start evicting each other until the translation "
                "subsystem throttles the link\n");
    return 0;
}
