/**
 * @file
 * Fig. 12b: effect of the Pending Translation Buffer depth on the
 * partitioned design (no prefetching). The PTB hides translation
 * latency by letting later packets start translating while earlier
 * ones walk — hit-under-miss at the device. `--ablate` additionally
 * sweeps the IOMMU walker-slot count, a design knob the paper keeps
 * implicit (its model allows unlimited concurrent walks).
 */

#include <cstring>

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    bool ablate = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ablate") == 0)
            ablate = true;
        else
            args.push_back(argv[i]);
    }
    const auto opts = core::BenchOptions::parse(
        static_cast<int>(args.size()), args.data());
    bench::banner("Fig. 12b",
                  "Pending Translation Buffer size (partitioned "
                  "design, no prefetch)",
                  opts);

    core::ExperimentRunner runner(opts.scale, opts.seed);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned ptb : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                values.push_back(
                    bench::runPoint(runner,
                                    bench::partitionedPtbConfig(ptb),
                                    bench, t)
                        .achievedGbps);
            }
            series.emplace_back("PTB" + std::to_string(ptb),
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    if (ablate) {
        std::printf("\n--- ablation: IOMMU walker slots "
                    "(PTB=32, partitioned, iperf3) ---\n");
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned walkers : {4u, 8u, 16u, 32u, 0u}) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                core::SystemConfig config =
                    bench::partitionedPtbConfig(32);
                config.iommu.walkers = walkers;
                values.push_back(
                    bench::runPoint(runner, config,
                                    workload::Benchmark::Iperf3, t)
                        .achievedGbps);
            }
            series.emplace_back(walkers == 0
                                    ? std::string("unlimited")
                                    : "W" + std::to_string(walkers),
                                std::move(values));
        }
        core::printBandwidthTable(std::cout,
                                  "walker-slot ablation (Gb/s)",
                                  tenants, series);
    }

    std::printf("\npaper: 8 PTB entries reach full bandwidth up to "
                "16 tenants; 32 entries achieve ~136 Gb/s at 1024 "
                "tenants; beyond that, growing the PTB stops "
                "paying for its hardware\n");
    return 0;
}
