/**
 * @file
 * Fig. 12b: effect of the Pending Translation Buffer depth on the
 * partitioned design (no prefetching). The PTB hides translation
 * latency by letting later packets start translating while earlier
 * ones walk — hit-under-miss at the device. `--ablate` additionally
 * sweeps the IOMMU walker-slot count, a design knob the paper keeps
 * implicit (its model allows unlimited concurrent walks).
 */

#include <cstring>

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    bool ablate = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ablate") == 0)
            ablate = true;
        else
            args.push_back(argv[i]);
    }
    const auto opts = core::BenchOptions::parse(
        static_cast<int>(args.size()), args.data());
    bench::banner("Fig. 12b",
                  "Pending Translation Buffer size (partitioned "
                  "design, no prefetch)",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    constexpr unsigned kPtbSweep[] = {1, 2, 4, 8, 16, 32, 64};
    constexpr unsigned kWalkerSweep[] = {4, 8, 16, 32, 0};

    const bench::WallTimer timer;
    bench::JsonReport report("fig12b_ptb", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (unsigned ptb : kPtbSweep) {
            for (unsigned t : tenants)
                batch.add(bench::partitionedPtbConfig(ptb), bench,
                          t);
        }
    }
    if (ablate) {
        for (unsigned walkers : kWalkerSweep) {
            for (unsigned t : tenants) {
                core::SystemConfig config =
                    bench::partitionedPtbConfig(32);
                config.iommu.walkers = walkers;
                batch.add(std::move(config),
                          workload::Benchmark::Iperf3, t);
            }
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned ptb : kPtbSweep) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back("PTB" + std::to_string(ptb),
                                std::move(values));
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s), RR1 — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    if (ablate) {
        std::printf("\n--- ablation: IOMMU walker slots "
                    "(PTB=32, partitioned, iperf3) ---\n");
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (unsigned walkers : kWalkerSweep) {
            std::vector<double> values;
            for (unsigned t : tenants) {
                (void)t;
                values.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(walkers == 0
                                    ? std::string("unlimited")
                                    : "W" + std::to_string(walkers),
                                std::move(values));
        }
        core::printBandwidthTable(std::cout,
                                  "walker-slot ablation (Gb/s)",
                                  tenants, series);
    }

    std::printf("\npaper: 8 PTB entries reach full bandwidth up to "
                "16 tenants; 32 entries achieve ~136 Gb/s at 1024 "
                "tenants; beyond that, growing the PTB stops "
                "paying for its hardware\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
