/**
 * @file
 * Table IV: architectural parameters of the Base and HyperTRIO
 * configurations used for evaluation.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    const bench::WallTimer timer;
    bench::JsonReport report("table4_configs", opts);
    std::printf("=== Table IV: Base vs HyperTRIO parameters ===\n\n");
    for (const auto &config : {core::SystemConfig::base(),
                               core::SystemConfig::hypertrio()}) {
        std::printf("%s\n", config.describe().c_str());
        report.addScalar(config.name + ".ptb_entries",
                         config.device.ptbEntries);
        report.addScalar(config.name + ".devtlb_entries",
                         static_cast<double>(
                             config.device.devtlb.entries));
        report.addScalar(config.name + ".prefetch_enabled",
                         config.device.prefetch.enabled ? 1.0
                                                        : 0.0);
    }
    std::printf(
        "paper Table IV: PTB 1 vs 32 entries; DevTLB 64e/8w LFU, "
        "1 vs 8 partitions; L2TLB 512e/16w LFU, 1 vs 32 "
        "partitions; L3TLB 1024e/16w LFU, 1 vs 64 partitions; "
        "prefetching off vs 8-entry buffer / 48-access stride / "
        "2 pages per tenant (our prefetcher is recalibrated to "
        "this model's latencies — see DESIGN.md)\n");
    report.write(timer.seconds());
    return 0;
}
