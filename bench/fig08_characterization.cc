/**
 * @file
 * Fig. 8 analogue: single-tenant I/O virtual page characterisation.
 *
 * (a) Page-access frequencies split into three groups: one hot 4 KB
 *     control page, 32 x 2 MB data-buffer pages of roughly equal
 *     frequency, and ~70 cold 4 KB init pages (< 100 accesses each).
 * (b) The data-buffer access pattern is periodic: each 2 MB page is
 *     accessed ~1500 times in a row before the driver unmaps it and
 *     moves to the next page in the ring.
 */

#include <algorithm>
#include <unordered_map>

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 8",
                  "single-tenant page-access characterisation "
                  "(mediastream)",
                  opts);

    const bench::WallTimer timer;
    bench::JsonReport report("fig08_characterization", opts);

    // Single tenant, long log, paper-like pattern.
    const auto profile =
        workload::benchmarkProfile(workload::Benchmark::Mediastream);
    workload::TenantLogGenerator gen(profile.pattern, opts.seed);
    const uint64_t packets = 200000;
    const trace::TenantLog log = gen.generate(0, packets);

    // ---- (a) frequency groups --------------------------------------
    const workload::PageAccessStats stats = workload::analyzeLog(log);
    std::printf("(a) page access frequencies — %zu distinct pages, "
                "%llu translation requests\n",
                stats.pages.size(),
                (unsigned long long)log.translations());
    std::printf("%-14s %6s %12s\n", "page", "size", "accesses");
    size_t shown = 0;
    uint64_t data_total = 0;
    uint64_t data_pages = 0;
    uint64_t init_pages = 0;
    uint64_t init_max = 0;
    for (const auto &pc : stats.pages) {
        if (pc.size == mem::PageSize::Size2M) {
            ++data_pages;
            data_total += pc.count;
        }
        if (pc.page >= 0xf0000000) {
            ++init_pages;
            init_max = std::max(init_max, pc.count);
        }
        if (shown < 8) {
            std::printf("%#-14llx %6s %12llu\n",
                        (unsigned long long)pc.page,
                        pc.size == mem::PageSize::Size2M ? "2M"
                                                         : "4K",
                        (unsigned long long)pc.count);
            ++shown;
        }
    }
    const double gap =
        data_pages == 0
            ? 0.0
            : static_cast<double>(stats.pages.front().count) /
                  (static_cast<double>(data_total) /
                   static_cast<double>(data_pages));
    std::printf("  ...\n");
    std::printf("group 1: control page %#llx, %llu accesses\n",
                (unsigned long long)stats.pages.front().page,
                (unsigned long long)stats.pages.front().count);
    std::printf("group 2: %llu x 2MB data pages, ~%llu accesses "
                "each (hot/data gap %.0fx; paper ~30x per control "
                "access, ours counts ring+notify)\n",
                (unsigned long long)data_pages,
                (unsigned long long)(data_total /
                                     std::max<uint64_t>(1,
                                                        data_pages)),
                gap);
    std::printf("group 3: %llu init pages, max %llu accesses "
                "(paper: <100)\n",
                (unsigned long long)init_pages,
                (unsigned long long)init_max);
    report.addScalar("distinct_pages",
                     static_cast<double>(stats.pages.size()));
    report.addScalar("translations",
                     static_cast<double>(log.translations()));
    report.addScalar("data_pages", static_cast<double>(data_pages));
    report.addScalar("hot_data_gap", gap);

    // ---- (b) periodic pattern --------------------------------------
    // Count the accesses every 2 MB page receives between being
    // mapped and being recycled (its mapping epoch) — the paper's
    // "each page is accessed ~1500 times in a row until the driver
    // unmaps it and starts using buffers in the next page".
    std::printf("\n(b) data-buffer access pattern (accesses per "
                "page mapping epoch)\n");
    std::unordered_map<mem::Addr, uint64_t> epoch_count;
    std::vector<uint64_t> epochs;
    for (const auto &pkt : log.packets) {
        for (uint16_t i = 0; i < pkt.opCount; ++i) {
            const trace::PageOp &op = log.ops[pkt.opBegin + i];
            if (!op.isMap &&
                op.size == mem::PageSize::Size2M) {
                auto it = epoch_count.find(op.pageBase);
                if (it != epoch_count.end()) {
                    epochs.push_back(it->second);
                    it->second = 0;
                }
            }
        }
        if (pkt.dataHuge && pkt.dataIova < 0xf0000000) {
            ++epoch_count[mem::pageBase(pkt.dataIova,
                                        mem::PageSize::Size2M)];
        }
    }
    if (!epochs.empty()) {
        uint64_t sum = 0;
        for (uint64_t e : epochs)
            sum += e;
        std::printf("observed %zu completed mapping epochs; mean "
                    "%.0f accesses per page per epoch (paper: "
                    "~1500, sequential within each of %u streams)\n",
                    epochs.size(),
                    static_cast<double>(sum) /
                        static_cast<double>(epochs.size()),
                    profile.pattern.streams);
        report.addScalar("mean_epoch_accesses",
                         static_cast<double>(sum) /
                             static_cast<double>(epochs.size()));
    }

    // Active translation set (used by Fig. 11c).
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        const auto p = workload::benchmarkProfile(bench);
        workload::TenantLogGenerator g(p.pattern, opts.seed);
        const unsigned active = workload::activeTranslationSet(
            g.generate(0, 50000), 0.999, 128);
        std::printf("active translation set, %-12s: %u "
                    "(paper: iperf3 8, mediastream 32, websearch "
                    "36)\n",
                    workload::benchmarkName(bench), active);
        report.addScalar(std::string("active_set.") +
                             workload::benchmarkName(bench),
                         active);
    }
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
