/**
 * @file
 * Fig. 11a: the Base design with 64-entry versus 1024-entry 8-way
 * DevTLBs. Simply scaling the DevTLB helps only while the tenant
 * count is moderate; once many tenants reuse the same gIOVAs the
 * frequently used sets conflict regardless of total capacity.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 11a",
                  "Base design, 64 vs 1024-entry 8-way DevTLB",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    const bench::WallTimer timer;
    bench::JsonReport report("fig11a_devtlb_size", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (const char *il : {"RR1", "RR4"}) {
            for (size_t entries : {64u, 1024u}) {
                for (unsigned t : tenants) {
                    core::SystemConfig config =
                        core::SystemConfig::base();
                    config.device.devtlb.entries = entries;
                    batch.add(std::move(config), bench, t, il);
                }
            }
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (const char *il : {"RR1", "RR4"}) {
            for (size_t entries : {64u, 1024u}) {
                std::vector<double> values;
                for (unsigned t : tenants) {
                    (void)t;
                    values.push_back(batch.take().achievedGbps);
                }
                series.emplace_back(std::to_string(entries) + "e/" +
                                        il,
                                    std::move(values));
            }
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s) — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    std::printf("\npaper: 1024 entries help up to ~64 tenants; "
                "beyond 128 tenants both sizes perform the same "
                "because hot sets conflict (same guest gIOVAs), and "
                "RR4 can beat a bigger DevTLB via in-burst reuse\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
