/**
 * @file
 * Machine-readable bench output: every bench binary accepts
 * `--json <file>` and, when given, writes one JSON document with
 *
 *   {
 *     "schema": "hypersio-bench-1",
 *     "bench": "<binary id>",
 *     "config": {"scale", "max_tenants", "seed", "jobs"},
 *     "points": [{"label", "benchmark", "tenants", "interleave",
 *                 "results": {...RunResults fields...},
 *                 "stats": {...full stat tree...}}, ...],
 *     "scalars": {"<name>": <value>, ...},
 *     "wall_seconds": <float>
 *   }
 *
 * Sweep benches get their "points" filled automatically by
 * PointBatch; table-style benches record headline numbers through
 * addScalar(). scripts/bench_compare.py diffs two such files and
 * gates on throughput/hit-rate drift.
 */

#ifndef HYPERSIO_BENCH_JSON_REPORT_HH
#define HYPERSIO_BENCH_JSON_REPORT_HH

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/bench_options.hh"
#include "core/run_results.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "workload/benchmarks.hh"

namespace hypersio::bench
{

/** Collects one bench run's results and writes the JSON report. */
class JsonReport
{
  public:
    JsonReport(std::string bench_id, const core::BenchOptions &opts)
        : _benchId(std::move(bench_id)), _opts(opts)
    {}

    /** False when the bench ran without `--json`. */
    bool enabled() const { return !_opts.jsonPath.empty(); }

    /** Records one sweep point (label + workload + results). */
    void
    addPoint(const std::string &label, const std::string &benchmark,
             unsigned tenants, const std::string &interleave,
             const core::RunResults &results,
             std::string stats_json = "")
    {
        if (!enabled())
            return;
        _points.push_back({label, benchmark, tenants, interleave,
                           results, std::move(stats_json)});
    }

    /**
     * Records an ExperimentRow as produced by the runner. Templated
     * (rather than taking core::ExperimentPoint/Row directly) so
     * benches that never touch the experiment harness don't pull
     * core/runner.hh — and the whole simulator behind it — into
     * their translation unit just for the report type.
     */
    template <typename ExperimentPointT, typename ExperimentRowT>
    void
    addRow(const ExperimentPointT &point, const ExperimentRowT &row)
    {
        addPoint(point.label, workload::benchmarkName(point.bench),
                 point.tenants, point.interleave.name(), row.results,
                 row.statsJson);
    }

    /** Records one named headline value (table-style benches). */
    void
    addScalar(const std::string &name, double value)
    {
        if (enabled())
            _scalars.emplace_back(name, value);
    }

    /** Writes the report file; no-op without `--json`. */
    void
    write(double wall_seconds) const
    {
        if (!enabled())
            return;
        std::ofstream out(_opts.jsonPath, std::ios::trunc);
        if (!out)
            fatal("cannot open '%s' for writing",
                  _opts.jsonPath.c_str());
        json::Writer w(out);
        w.beginObject();
        w.key("schema");
        w.value("hypersio-bench-1");
        w.key("bench");
        w.value(_benchId);
        w.key("config");
        w.beginObject();
        w.key("scale");
        w.value(_opts.scale);
        w.key("max_tenants");
        w.value(_opts.maxTenants);
        w.key("seed");
        w.value(_opts.seed);
        w.key("jobs");
        w.value(_opts.jobs);
        w.endObject();
        w.key("points");
        w.beginArray();
        for (const auto &p : _points) {
            w.beginObject();
            w.key("label");
            w.value(p.label);
            w.key("benchmark");
            w.value(p.benchmark);
            w.key("tenants");
            w.value(p.tenants);
            w.key("interleave");
            w.value(p.interleave);
            w.key("results");
            core::writeRunResultsJson(w, p.results);
            if (!p.statsJson.empty()) {
                w.key("stats");
                w.raw(p.statsJson);
            }
            w.endObject();
        }
        w.endArray();
        w.key("scalars");
        w.beginObject();
        for (const auto &[name, value] : _scalars) {
            w.key(name);
            w.value(value);
        }
        w.endObject();
        w.key("wall_seconds");
        w.value(wall_seconds);
        w.endObject();
        out << '\n';
        if (!out)
            fatal("write error on '%s'", _opts.jsonPath.c_str());
    }

  private:
    struct Point
    {
        std::string label;
        std::string benchmark;
        unsigned tenants;
        std::string interleave;
        core::RunResults results;
        std::string statsJson;
    };

    std::string _benchId;
    core::BenchOptions _opts;
    std::vector<Point> _points;
    std::vector<std::pair<std::string, double>> _scalars;
};

/**
 * Compact stat-tree capture for benches that run a System inline.
 * Templated for the same reason addRow is: callers already include
 * core/system.hh; this header doesn't need to.
 */
template <typename SystemT>
std::string
captureStatsJson(const SystemT &system)
{
    std::ostringstream os;
    system.dumpStatsJson(os, 0);
    return os.str();
}

} // namespace hypersio::bench

#endif // HYPERSIO_BENCH_JSON_REPORT_HH
