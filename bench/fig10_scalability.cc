/**
 * @file
 * Fig. 10: scalability of I/O bandwidth for the HyperTRIO and Base
 * designs across the three benchmarks and the RR1/RR4/RAND1
 * inter-tenant interleavings, 4 to 1024 tenants (Table IV configs).
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 10",
                  "HyperTRIO vs Base bandwidth scalability",
                  opts);

    core::ExperimentRunner runner(opts.scale, opts.seed);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (const char *il : {"RR1", "RR4", "RAND1"}) {
            std::vector<double> base;
            std::vector<double> hyper;
            for (unsigned t : tenants) {
                base.push_back(
                    bench::runPoint(runner,
                                    core::SystemConfig::base(),
                                    bench, t, il)
                        .achievedGbps);
                hyper.push_back(
                    bench::runPoint(runner,
                                    core::SystemConfig::hypertrio(),
                                    bench, t, il)
                        .achievedGbps);
            }
            series.emplace_back(std::string("base/") + il,
                                std::move(base));
            series.emplace_back(std::string("HT/") + il,
                                std::move(hyper));
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s) — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    std::printf(
        "\npaper: Base stays between 12 and 30 Gb/s beyond 32 "
        "tenants (<=15%% of the link, RR4 above RR1); HyperTRIO "
        "reaches up to 100%% at 1024 tenants and ~80%% under "
        "RAND1\n");
    return 0;
}
