/**
 * @file
 * Fig. 10: scalability of I/O bandwidth for the HyperTRIO and Base
 * designs across the three benchmarks and the RR1/RR4/RAND1
 * inter-tenant interleavings, 4 to 1024 tenants (Table IV configs).
 *
 * All points run through one PointBatch, so `--jobs N` spreads the
 * sweep over N workers while the tables stay byte-identical to a
 * `--jobs 1` run.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 10",
                  "HyperTRIO vs Base bandwidth scalability",
                  opts);

    core::ExperimentRunner runner = bench::makeRunner(opts);
    const auto tenants = core::paperTenantSweep(opts.maxTenants);

    const bench::WallTimer timer;
    bench::JsonReport report("fig10_scalability", opts);
    bench::PointBatch batch(runner, &report);
    for (workload::Benchmark bench : workload::AllBenchmarks) {
        for (const char *il : {"RR1", "RR4", "RAND1"}) {
            for (unsigned t : tenants) {
                batch.add(core::SystemConfig::base(), bench, t, il);
                batch.add(core::SystemConfig::hypertrio(), bench, t,
                          il);
            }
        }
    }
    batch.run(bench::progressSink(opts));

    for (workload::Benchmark bench : workload::AllBenchmarks) {
        std::vector<std::pair<std::string, std::vector<double>>>
            series;
        for (const char *il : {"RR1", "RR4", "RAND1"}) {
            std::vector<double> base;
            std::vector<double> hyper;
            for (unsigned t : tenants) {
                (void)t;
                base.push_back(batch.take().achievedGbps);
                hyper.push_back(batch.take().achievedGbps);
            }
            series.emplace_back(std::string("base/") + il,
                                std::move(base));
            series.emplace_back(std::string("HT/") + il,
                                std::move(hyper));
        }
        core::printBandwidthTable(
            std::cout,
            std::string("bandwidth (Gb/s) — ") +
                workload::benchmarkName(bench),
            tenants, series);
    }

    std::printf(
        "\npaper: Base stays between 12 and 30 Gb/s beyond 32 "
        "tenants (<=15%% of the link, RR4 above RR1); HyperTRIO "
        "reaches up to 100%% at 1024 tenants and ~80%% under "
        "RAND1\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
