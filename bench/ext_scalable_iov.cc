/**
 * @file
 * Extension experiment: Intel Scalable I/O Virtualization.
 *
 * The paper's introduction counts VMs, containers, *and application
 * processes* as tenants, and its architecture section notes that
 * translation requests carry "a Source ID (SID) and/or Process
 * Address Space Identifier (PASID)". With Scalable IOV one VF hosts
 * many process-level address spaces, multiplying the number of
 * independent address spaces without adding VFs. This bench holds
 * the VF count fixed and grows processes per VF, pushing the system
 * into the hyper-tenant regime through PASIDs alone.
 */

#include "bench_common.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    const auto opts = core::BenchOptions::parse(argc, argv);
    bench::banner("Extension: Scalable IOV",
                  "process-level tenants (PASIDs) per VF", opts);

    const bench::WallTimer timer;
    bench::JsonReport report("ext_scalable_iov", opts);
    const unsigned vfs = 32;
    const auto profile =
        workload::benchmarkProfile(workload::Benchmark::Iperf3);

    std::printf("%u VFs, iperf3 RR1; streams are spread across the "
                "VF's processes\n\n",
                vfs);
    std::printf("%12s %14s %12s %12s %12s\n", "processes",
                "addr spaces", "config", "Gb/s", "devtlb hit");
    for (unsigned processes : {1u, 2u, 6u}) {
        workload::TenantPattern pattern = profile.pattern;
        pattern.processesPerTenant = processes;
        const auto packets =
            static_cast<uint64_t>(22000 * opts.scale);
        workload::scaleInitPhase(pattern, packets);
        workload::TenantLogGenerator gen(pattern, opts.seed);
        std::vector<trace::TenantLog> logs;
        for (unsigned t = 0; t < vfs; ++t)
            logs.push_back(gen.generate(t, packets));
        const auto tr = trace::constructTrace(
            logs, trace::parseInterleaving("RR1"));

        for (bool hypertrio : {false, true}) {
            core::SystemConfig config =
                hypertrio ? core::SystemConfig::hypertrio()
                          : core::SystemConfig::base();
            config.seed = opts.seed;
            core::System system(config);
            const auto r = system.run(tr);
            std::printf("%12u %14u %12s %12.1f %11.1f%%\n",
                        processes, vfs * processes,
                        config.name.c_str(), r.achievedGbps,
                        r.devtlbHitRate * 100.0);
            report.addPoint(
                config.name + "@proc" + std::to_string(processes),
                "scalable-iov-iperf3", vfs, "RR1", r,
                report.enabled() ? bench::captureStatsJson(system)
                                 : std::string());
        }
    }

    std::printf(
        "\nEach extra process per VF is another address space whose "
        "translations contend for the same caches: the hyper-tenant "
        "collapse appears even at a fixed VF count, and HyperTRIO's "
        "mechanisms absorb it the same way.\n");
    report.write(timer.seconds());
    bench::wallClockLine(timer, opts);
    return 0;
}
